"""The multiprocess backend: real processes, real queues, measured costs.

Every other backend *models* CPU and NIC cost; this one runs the
topology on real OS resources and **measures** them (DESIGN.md §16):

- one worker process per simulated server, forked from the parent so
  topology factories (closures included) carry over;
- each worker hosts the operator *instances placed on its server*
  (``instance % num_servers``, the same round-robin placement the DES
  and vectorized backends use) behind worker-local
  :class:`~repro.engine.physical.PhysicalOperator` shards;
- routing reuses the **scalar routers** (`grouping.build_router`) with
  the exact ``RouterContext`` the DES ``deploy`` builds — one router
  per (stream, source instance), seeded by ``stable_hash(stream.name)``
  — so table/hash placements are per-tuple identical by construction,
  and hybrid/PKG routers see each source instance's tuples in the same
  order as the DES;
- intra-server edges stay in-process (zero serialized bytes); tuples
  crossing servers are pickled onto the destination worker's bounded
  inbound queue, and the serialized length is recorded — locality shows
  up as a *measured* byte win, not a modeled one;
- per-server CPU is measured with ``time.process_time_ns()`` in each
  worker; ``BackendResult.sim_s`` is the busiest worker's CPU seconds
  and ``BackendResult.measured`` carries the per-server breakdown.

**Termination** rides on per-producer FIFO: every worker broadcasts a
``DONE(stream)`` marker after the last tuple it will ever send on that
stream, so a consumer that has collected all producers' markers has
provably received all data. **Backpressure** is deadlock-free: a
sender blocked on a full peer queue drains its own inbound queue while
retrying. **Scripted reconfigurations** replay through a control
channel with barrier semantics: the coordinator broadcasts the action,
workers pause their sources and exchange ``FENCE`` markers (flushing
all in-flight pre-epoch tuples), swap tables / resize / migrate keyed
state to each key's new owner worker, exchange ``MIG_DONE`` markers
and resume. **Failure handling** is structured: a crashed or hung
worker (or an expired ``mp_timeout_s``) tears every process down —
terminate, join, kill — and raises :class:`MultiprocessBackendError`
carrying the partial progress, leaving no orphaned children.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.grouping import RouterContext, stable_hash
from repro.engine.operators import (
    Bolt,
    OperatorContext,
    Spout,
    StatefulBolt,
)
from repro.engine.physical import (
    PhysicalOperator,
    SourceOperator,
    TupleBatch,
    merge_op_stats,
)
from repro.engine.topology import Topology
from repro.engine.tuples import payload_size
from repro.errors import DeploymentError


class MultiprocessBackendError(DeploymentError):
    """A multiprocess run failed (crash, hang, timeout, worker error).

    Attributes
    ----------
    reason:
        ``"worker-crash"`` / ``"timeout"`` / ``"worker-error"``.
    server:
        The offending worker's server index, when one is known.
    exitcode:
        The crashed worker's exit code, when one is known.
    partial:
        Progress at teardown: ``{"emitted": {server: n}, "finished":
        [servers], "results": [servers]}``.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        server: Optional[int] = None,
        exitcode: Optional[int] = None,
        partial: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.server = server
        self.exitcode = exitcode
        self.partial = partial or {}


def _placement(instance: int, num_servers: int) -> int:
    """Round-robin placement, identical to the DES and vectorized."""
    return instance % num_servers


class _MPTuple:
    """Value carrier handed to worker-hosted ``Bolt.process``."""

    __slots__ = ("values", "size", "root_id")

    def __init__(self, values: tuple, size: int) -> None:
        self.values = values
        self.size = size
        self.root_id = None


class _MPContext(OperatorContext):
    """Minimal operator context for worker-hosted operator objects."""

    def __init__(
        self, op_name: str, instance: int, parallelism: int, server: int
    ) -> None:
        super().__init__(op_name, instance, parallelism, server, lambda: 0.0)


class _ShardSource(SourceOperator):
    """The spout instances of one logical spout placed on this server.

    Cycles its local instances, producing one single-instance batch per
    poll — the worker routes each batch through the instance's real
    scalar routers.
    """

    def __init__(
        self,
        name: str,
        factory,
        parallelism: int,
        server: int,
        num_servers: int,
        batch_size: int,
        max_tuples_per_instance: Optional[int],
        header_bytes: int,
    ) -> None:
        super().__init__(name)
        self.batch_size = batch_size
        self._header = header_bytes
        self._spouts: Dict[int, Spout] = {}
        self._contexts: Dict[int, _MPContext] = {}
        self._budget: Dict[int, Optional[int]] = {}
        self.emitted_per_instance: Dict[int, int] = {}
        self._live: List[int] = []
        self._cursor = 0
        for instance in range(parallelism):
            if _placement(instance, num_servers) != server:
                continue
            operator = factory()
            if not isinstance(operator, Spout):
                raise DeploymentError(
                    f"factory of spout {name!r} returned "
                    f"{type(operator).__name__}, not a Spout"
                )
            context = _MPContext(name, instance, parallelism, server)
            operator.open(context)
            self._spouts[instance] = operator
            self._contexts[instance] = context
            self._budget[instance] = max_tuples_per_instance
            self.emitted_per_instance[instance] = 0
            self._live.append(instance)

    def _poll(self) -> Optional[TupleBatch]:
        while self._live:
            slot = self._cursor % len(self._live)
            instance = self._live[slot]
            values = self._pull(instance)
            if values:
                self._cursor = slot + 1
                header = self._header
                return TupleBatch(
                    values,
                    src_instances=[instance] * len(values),
                    sizes=[payload_size(v) + header for v in values],
                )
            self._live.pop(slot)
            if self._live:
                self._cursor = slot % len(self._live)
        return None

    def _pull(self, instance: int) -> List[tuple]:
        budget = self._budget[instance]
        limit = (
            self.batch_size
            if budget is None
            else min(self.batch_size, budget)
        )
        if limit <= 0:
            return []
        values: List[tuple] = []
        spout = self._spouts[instance]
        context = self._contexts[instance]
        while len(values) < limit:
            if spout.finished or not spout.next_tuple(context):
                break
            values.extend(context._drain())
        if budget is not None:
            self._budget[instance] = budget - len(values)
        self.emitted_per_instance[instance] += len(values)
        return values


class _ShardBolt(PhysicalOperator):
    """The instances of one logical bolt placed on this server.

    ``add_input`` batches carry per-tuple destination instances; each
    tuple is processed by the owning local instance and any emissions
    are buffered as an output batch for the worker to route onward.
    """

    def __init__(
        self,
        name: str,
        input_names,
        factory,
        parallelism: int,
        server: int,
        num_servers: int,
        header_bytes: int,
    ) -> None:
        super().__init__(name, input_names)
        self._factory = factory
        self._server = server
        self._num_servers = num_servers
        self._header = header_bytes
        self.parallelism = parallelism
        self.operators: Dict[int, Bolt] = {}
        self.contexts: Dict[int, _MPContext] = {}
        self.received: Dict[int, int] = {}
        for instance in range(parallelism):
            if _placement(instance, num_servers) == server:
                self._spawn(instance)

    def _spawn(self, instance: int) -> None:
        operator = self._factory()
        context = _MPContext(
            self.name, instance, self.parallelism, self._server
        )
        operator.open(context)
        self.operators[instance] = operator
        self.contexts[instance] = context
        self.received.setdefault(instance, 0)

    def resize(self, parallelism: int) -> None:
        """Grow to ``parallelism``, spawning the new local instances."""
        self.parallelism = max(self.parallelism, parallelism)
        for instance in range(parallelism):
            if (
                _placement(instance, self._num_servers) == self._server
                and instance not in self.operators
            ):
                self._spawn(instance)

    def _process(self, batch: TupleBatch, input_index: int) -> None:
        start = time.perf_counter()
        dst = batch.dst_instances
        sizes = batch.sizes
        out_values: List[tuple] = []
        out_src: List[int] = []
        for index, values in enumerate(batch.values):
            instance = dst[index]
            try:
                operator = self.operators[instance]
            except KeyError:
                raise DeploymentError(
                    f"worker {self._server} got a tuple for "
                    f"{self.name}[{instance}], which is not placed here"
                ) from None
            context = self.contexts[instance]
            size = sizes[index] if sizes is not None else 0
            operator.process(_MPTuple(values, size), context)
            self.received[instance] += 1
            emitted = context._drain()
            if emitted:
                out_values.extend(emitted)
                out_src.extend([instance] * len(emitted))
        if out_values:
            header = self._header
            self._emit(
                TupleBatch(
                    out_values,
                    src_instances=out_src,
                    sizes=[payload_size(v) + header for v in out_values],
                )
            )
        self.stats.busy_s += time.perf_counter() - start

    # -- state access (migration + result extraction) -------------------

    def stateful_instances(self):
        for instance, operator in sorted(self.operators.items()):
            if isinstance(operator, StatefulBolt):
                yield instance, operator

    def state_snapshot(self) -> Dict[int, Dict[Any, Any]]:
        return {
            instance: dict(operator.state)
            for instance, operator in self.stateful_instances()
        }


class _StreamConfig:
    """One stream's mutable routing configuration at a worker: the
    live table / width / seed that both the per-source routers and the
    migration owner math read."""

    __slots__ = ("name", "src", "dst", "grouping", "kind", "n", "table", "seed")

    def __init__(self, stream, dst_parallelism: int) -> None:
        from repro.engine.backends.vectorized import _edge_kind
        from repro.errors import RoutingError

        self.name = stream.name
        self.src = stream.src
        self.dst = stream.dst
        self.grouping = stream.grouping
        try:
            self.kind, _ = _edge_kind(stream.grouping)
        except RoutingError:
            # The scalar routers handle every grouping; the kind only
            # gates scripted reconfiguration (table/hash streams).
            self.kind = "other"
        self.n = dst_parallelism
        self.table = getattr(stream.grouping, "initial_table", None)
        self.seed = stable_hash(stream.name)

    def owner_of(self, key) -> int:
        """The key's destination instance under the current table —
        identical math to ``TableRouter._route``."""
        table = self.table
        if table is not None:
            instance = table.lookup(key)
            if instance is not None and 0 <= instance < self.n:
                return instance
        return stable_hash(key, self.seed) % self.n


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

_POLL_S = 0.05


class _Worker:
    """One server's process: hosts its operator shards, routes locally
    produced tuples, and speaks the DONE / FENCE / MIGRATE protocol."""

    def __init__(
        self,
        server: int,
        num_servers: int,
        topology: Topology,
        options,
        inboxes,
        events,
    ) -> None:
        self.server = server
        self.num_servers = num_servers
        self.topology = topology
        self.options = options
        self.inboxes = inboxes
        self.inbox = inboxes[server]
        self.events = events
        self.peers = [s for s in range(num_servers) if s != server]

        self.paused = False
        self.stopped = False
        self.finished_sent = False
        self.emitted_reported = 0
        self.ipc_tx_bytes = 0
        self.ipc_rx_bytes = 0
        self.ipc_tx_msgs = 0
        self.ipc_rx_msgs = 0
        #: stream -> [local_tuples, total_tuples] routed by this worker
        self.stream_counts: Dict[str, List[int]] = {}
        #: stream -> producers (servers) that declared DONE
        self.done_from: Dict[str, set] = {}
        #: epoch -> barrier state
        self.epochs: Dict[int, dict] = {}
        #: MIGRATE payloads that arrived before our own resize created
        #: the target instances (a peer can finish its barrier first)
        self._pending_migrates: List[Tuple[str, dict]] = []

        fault = options.mp_fault
        self._fault = None
        if fault and int(fault.get("server", -1)) == server:
            self._fault = (
                str(fault.get("kind", "crash")),
                int(fault.get("after_tuples", 0)),
            )

    # -- setup ----------------------------------------------------------

    def setup(self) -> None:
        topo = self.topology
        options = self.options
        header = options.costs.tuple_header_bytes
        self.widths = {
            op.name: op.parallelism for op in topo.operators.values()
        }
        self.sources: Dict[str, _ShardSource] = {}
        self.bolts: Dict[str, _ShardBolt] = {}
        self.streams: Dict[str, _StreamConfig] = {}
        for name in topo.topological_order():
            spec = topo.operator(name)
            in_streams = topo.inputs_of(name)
            if spec.is_spout:
                self.sources[name] = _ShardSource(
                    name,
                    spec.factory,
                    spec.parallelism,
                    self.server,
                    self.num_servers,
                    options.batch_size,
                    options.max_tuples_per_instance,
                    header,
                )
            else:
                self.bolts[name] = _ShardBolt(
                    name,
                    [s.name for s in in_streams],
                    spec.factory,
                    spec.parallelism,
                    self.server,
                    self.num_servers,
                    header,
                )
        for stream in topo.streams:
            self.streams[stream.name] = _StreamConfig(
                stream, self.widths[stream.dst]
            )
            self.stream_counts[stream.name] = [0, 0]
            self.done_from[stream.name] = set()
        # One real scalar router per (stream, local source instance),
        # built exactly like the DES deploy().
        self.routers: Dict[Tuple[str, int], Any] = {}
        for stream in topo.streams:
            self._build_routers_for(stream.name)

    def _local_instances_of(self, op_name: str) -> List[int]:
        if op_name in self.sources:
            return sorted(self.sources[op_name]._spouts)
        return sorted(self.bolts[op_name].operators)

    def _build_routers_for(self, stream_name: str) -> None:
        config = self.streams[stream_name]
        dst_placements = [
            _placement(i, self.num_servers) for i in range(config.n)
        ]
        for instance in self._local_instances_of(config.src):
            if (stream_name, instance) in self.routers:
                continue
            context = RouterContext(
                stream_name=stream_name,
                src_instance=instance,
                src_server=self.server,
                dst_placements=dst_placements,
                seed=config.seed,
                cache_size=self.options.costs.router_cache_size,
            )
            self.routers[(stream_name, instance)] = (
                config.grouping.build_router(context)
            )

    # -- messaging ------------------------------------------------------

    def _put(self, server: int, message) -> None:
        """Put with backpressure: on a full peer queue, drain our own
        inbound queue (someone may be blocked on *us*) and retry."""
        box = self.inboxes[server]
        while True:
            try:
                box.put(message, timeout=_POLL_S)
                return
            except _queue.Full:
                self._drain_inbox(block=False)

    def _send_blob(self, server: int, payload: tuple) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.ipc_tx_bytes += len(blob)
        self.ipc_tx_msgs += 1
        self._put(server, blob)

    def _broadcast(self, message) -> None:
        for peer in self.peers:
            self._put(peer, message)

    # -- routing --------------------------------------------------------

    def _route_batch(self, op_name: str, batch: TupleBatch) -> None:
        """Send one locally produced batch across all of ``op_name``'s
        output streams: local destinations in-process, remote ones as
        one pickled message per (server, stream)."""
        for stream in self.topology.outputs_of(op_name):
            config = self.streams[stream.name]
            counts = self.stream_counts[stream.name]
            local_v: List[tuple] = []
            local_d: List[int] = []
            local_s: List[int] = []
            local_z: List[int] = []
            remote: Dict[int, List[List[Any]]] = {}
            routers = self.routers
            sizes = batch.sizes
            for index, values in enumerate(batch.values):
                src_instance = batch.src_instances[index]
                router = routers[(stream.name, src_instance)]
                size = sizes[index] if sizes is not None else 0
                for dst in router.select(values):
                    counts[1] += 1
                    dst_server = _placement(dst, self.num_servers)
                    if dst_server == self.server:
                        counts[0] += 1
                        local_v.append(values)
                        local_d.append(dst)
                        local_s.append(src_instance)
                        local_z.append(size)
                    else:
                        bucket = remote.setdefault(
                            dst_server, [[], [], [], []]
                        )
                        bucket[0].append(values)
                        bucket[1].append(dst)
                        bucket[2].append(src_instance)
                        bucket[3].append(size)
            for dst_server, (rv, rd, rs, rz) in sorted(remote.items()):
                self._send_blob(
                    dst_server, ("DATA", stream.name, rv, rd, rs, rz)
                )
            if local_v:
                self._deliver(
                    stream.name,
                    TupleBatch(
                        local_v,
                        src_instances=local_s,
                        dst_instances=local_d,
                        sizes=local_z,
                    ),
                )

    def _deliver(self, stream_name: str, batch: TupleBatch) -> None:
        config = self.streams[stream_name]
        shard = self.bolts[config.dst]
        shard.add_input(batch, shard.input_names.index(stream_name))
        while shard.has_next():
            self._route_batch(config.dst, shard.get_next())

    # -- DONE protocol --------------------------------------------------

    def _mark_stream_done(self, stream_name: str, producer: int) -> None:
        done = self.done_from[stream_name]
        if producer in done:
            return
        done.add(producer)
        if len(done) == self.num_servers:
            self._stream_fully_done(stream_name)

    def _declare_local_done(self, op_name: str) -> None:
        """This worker will produce no more tuples on ``op_name``'s
        output streams: broadcast the DONE markers (after all data)."""
        for stream in self.topology.outputs_of(op_name):
            self._broadcast(("DONE", stream.name, self.server))
            self._mark_stream_done(stream.name, self.server)

    def _stream_fully_done(self, stream_name: str) -> None:
        config = self.streams[stream_name]
        shard = self.bolts[config.dst]
        shard.input_done(shard.input_names.index(stream_name))
        while shard.has_next():
            self._route_batch(config.dst, shard.get_next())
        if shard.completed:
            self._declare_local_done(config.dst)

    # -- source polling -------------------------------------------------

    def _maybe_fault(self) -> None:
        if self._fault is None:
            return
        kind, after = self._fault
        emitted = sum(
            sum(s.emitted_per_instance.values())
            for s in self.sources.values()
        )
        if emitted < after:
            return
        if kind == "crash":
            os._exit(23)
        if kind == "hang":
            while True:  # parked until the coordinator terminates us
                time.sleep(60)
        raise DeploymentError(f"unknown mp_fault kind {kind!r}")

    def _poll_sources_once(self) -> bool:
        progressed = False
        for name, source in self.sources.items():
            if source.exhausted:
                continue
            batch = source.poll()
            if batch is not None:
                progressed = True
                self._route_batch(name, batch)
                self._maybe_fault()
            else:
                self._declare_local_done(name)
        emitted = sum(
            sum(s.emitted_per_instance.values())
            for s in self.sources.values()
        )
        if emitted != self.emitted_reported:
            self.emitted_reported = emitted
            self.events.put(("PROGRESS", self.server, emitted))
        return progressed

    # -- reconfiguration barrier ---------------------------------------

    def _epoch(self, epoch: int) -> dict:
        return self.epochs.setdefault(
            epoch,
            {
                "fences": set(),
                "mig_done": set(),
                "action": None,
                "fenced": False,
                "applied": False,
                "resumed": False,
            },
        )

    def _enter_fence(self, epoch: int) -> None:
        state = self._epoch(epoch)
        if state["fenced"]:
            return
        state["fenced"] = True
        self.paused = True
        self._broadcast(("FENCE", epoch, self.server))

    def _try_apply(self, epoch: int) -> None:
        state = self._epoch(epoch)
        if (
            state["applied"]
            or state["action"] is None
            or not state["fenced"]
            or not state["fences"].issuperset(self.peers)
        ):
            return
        # Quiesced: every peer fenced, so all pre-epoch data arrived
        # (per-producer FIFO) and has been processed.
        state["applied"] = True
        self._apply_action(epoch, self.options.actions[state["action"]])
        self._flush_pending_migrates()
        self._broadcast(("MIG_DONE", epoch, self.server))
        self._try_resume(epoch)

    def _try_resume(self, epoch: int) -> None:
        state = self._epoch(epoch)
        if (
            state["resumed"]
            or not state["applied"]
            or not state["mig_done"].issuperset(self.peers)
        ):
            return
        state["resumed"] = True
        self.paused = False
        self.events.put(("RECONFIGURED", epoch, self.server))

    def _apply_action(self, epoch: int, action) -> None:
        try:
            config = self.streams[action.stream]
        except KeyError:
            raise DeploymentError(
                f"reconfigure action names unknown stream "
                f"{action.stream!r}; one of {sorted(self.streams)}"
            ) from None
        if config.kind not in ("table", "hash"):
            raise DeploymentError(
                f"scripted reconfiguration requires a deterministic "
                f"keyed stream; {action.stream!r} is {config.kind!r}"
            )
        new_width = action.parallelism
        config.table = action.table
        if new_width is not None:
            config.n = new_width
            self.widths[config.dst] = max(
                self.widths[config.dst], new_width
            )
            shard = self.bolts[config.dst]
            shard.resize(new_width)
            # New local instances need routers for the dst op's own
            # output streams before they emit anything.
            for stream in self.topology.outputs_of(config.dst):
                self._build_routers_for(stream.name)
        # Swap the live routers of every local source instance.
        for instance in self._local_instances_of(config.src):
            router = self.routers[(config.name, instance)]
            if hasattr(router, "update_table"):
                if new_width is not None:
                    router.resize(config.n, config.table)
                else:
                    router.update_table(config.table)
            elif new_width is not None:
                router.resize(config.n)
        # Migrate keyed state to each key's new owner.
        shard = self.bolts[config.dst]
        outgoing: Dict[int, Dict[int, Dict[Any, Any]]] = {}
        local_installs: List[Tuple[int, Dict[Any, Any]]] = []
        for instance, operator in shard.stateful_instances():
            moving = [
                key
                for key in operator.state
                if config.owner_of(key) != instance
            ]
            for key in moving:
                owner = config.owner_of(key)
                entries = operator.extract_state([key])
                owner_server = _placement(owner, self.num_servers)
                if owner_server == self.server:
                    local_installs.append((owner, entries))
                else:
                    outgoing.setdefault(owner_server, {}).setdefault(
                        owner, {}
                    ).update(entries)
        for owner, entries in local_installs:
            shard.operators[owner].install_state(entries)
        for server, per_instance in sorted(outgoing.items()):
            self._send_blob(
                server, ("MIGRATE", config.dst, per_instance)
            )

    def _install_migrate(self, op_name: str, per_instance: dict) -> None:
        shard = self.bolts[op_name]
        if any(owner not in shard.operators for owner in per_instance):
            # A peer applied the resize before us; park the payload
            # until our own _apply_action creates the new instances.
            self._pending_migrates.append((op_name, per_instance))
            return
        for owner, entries in per_instance.items():
            shard.operators[owner].install_state(entries)

    def _flush_pending_migrates(self) -> None:
        pending, self._pending_migrates = self._pending_migrates, []
        for op_name, per_instance in pending:
            self._install_migrate(op_name, per_instance)

    # -- inbound handling -----------------------------------------------

    def _handle(self, message) -> None:
        if isinstance(message, bytes):
            self.ipc_rx_bytes += len(message)
            self.ipc_rx_msgs += 1
            payload = pickle.loads(message)
            tag = payload[0]
            if tag == "DATA":
                _, stream_name, values, dsts, srcs, sizes = payload
                self._deliver(
                    stream_name,
                    TupleBatch(
                        values,
                        src_instances=srcs,
                        dst_instances=dsts,
                        sizes=sizes,
                    ),
                )
            elif tag == "MIGRATE":
                _, op_name, per_instance = payload
                self._install_migrate(op_name, per_instance)
            else:  # pragma: no cover - protocol invariant
                raise DeploymentError(f"unknown blob tag {tag!r}")
            return
        tag = message[0]
        if tag == "DONE":
            _, stream_name, producer = message
            self._mark_stream_done(stream_name, producer)
        elif tag == "FENCE":
            _, epoch, producer = message
            self._epoch(epoch)["fences"].add(producer)
            self._enter_fence(epoch)
            self._try_apply(epoch)
        elif tag == "RECONFIG":
            _, epoch, action_index = message
            self._epoch(epoch)["action"] = action_index
            self._enter_fence(epoch)
            self._try_apply(epoch)
        elif tag == "MIG_DONE":
            _, epoch, producer = message
            self._epoch(epoch)["mig_done"].add(producer)
            self._try_resume(epoch)
        elif tag == "STOP":
            self.stopped = True
        else:  # pragma: no cover - protocol invariant
            raise DeploymentError(f"unknown control message {tag!r}")

    def _drain_inbox(self, block: bool) -> bool:
        handled = False
        while True:
            try:
                message = (
                    self.inbox.get(timeout=_POLL_S)
                    if block and not handled
                    else self.inbox.get_nowait()
                )
            except _queue.Empty:
                return handled
            handled = True
            self._handle(message)
            if self.stopped:
                return handled

    def _check_finished(self) -> None:
        if self.finished_sent:
            return
        if any(not s.exhausted for s in self.sources.values()):
            return
        if any(
            len(done) < self.num_servers
            for done in self.done_from.values()
        ):
            return
        self.finished_sent = True
        self.events.put(("FINISHED", self.server))

    # -- result ---------------------------------------------------------

    def result_payload(self, cpu_ns: int) -> dict:
        op_stats = {
            name: shard.stats.as_dict()
            for name, shard in {**self.sources, **self.bolts}.items()
        }
        return {
            "server": self.server,
            "cpu_ns": cpu_ns,
            "ipc_tx_bytes": self.ipc_tx_bytes,
            "ipc_rx_bytes": self.ipc_rx_bytes,
            "ipc_tx_msgs": self.ipc_tx_msgs,
            "ipc_rx_msgs": self.ipc_rx_msgs,
            "emitted": {
                name: dict(source.emitted_per_instance)
                for name, source in self.sources.items()
            },
            "processed": {
                name: shard.stats.tuples_in
                for name, shard in self.bolts.items()
            },
            "received": {
                name: dict(shard.received)
                for name, shard in self.bolts.items()
            },
            "state": {
                name: shard.state_snapshot()
                for name, shard in self.bolts.items()
            },
            "stream_counts": {
                name: list(counts)
                for name, counts in self.stream_counts.items()
            },
            "widths": dict(self.widths),
            "op_stats": op_stats,
        }

    def run(self) -> None:
        cpu_start = time.process_time_ns()
        try:
            self.setup()
            # Streams whose producer has no local instances and no
            # pending inputs will never produce here; the DONE protocol
            # discovers that through _check_finished's cascade, but
            # sources with zero local instances must still declare.
            self._poll_sources_once()
            while not self.stopped:
                progressed = False
                if not self.paused:
                    progressed = self._poll_sources_once()
                self._drain_inbox(block=not progressed)
                self._check_finished()
            cpu_ns = time.process_time_ns() - cpu_start
            self.events.put(
                ("RESULT", self.server, self.result_payload(cpu_ns))
            )
        except BaseException:
            self.events.put(
                ("ERROR", self.server, traceback.format_exc())
            )


def _worker_entry(
    server: int, num_servers: int, topology, options, inboxes, events
) -> None:
    _Worker(
        server, num_servers, topology, options, inboxes, events
    ).run()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


def _teardown(procs, queues, events) -> None:
    """Terminate → join → kill every worker; leave no orphans."""
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=5)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - terminate sufficed
            proc.kill()
            proc.join(timeout=5)
    for box in queues:
        box.close()
        box.cancel_join_thread()
    events.close()
    events.cancel_join_thread()


def run_multiprocess(topology: Topology, options) -> "BackendResult":
    import multiprocessing

    from repro.engine.backends import BackendResult, _default_servers

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise DeploymentError(
            "the multiprocess backend requires the 'fork' start method "
            "(topology factories are closures); unavailable here"
        ) from exc

    num_servers = _default_servers(topology, options)
    inboxes = [
        ctx.Queue(maxsize=max(1, options.mp_queue_maxsize))
        for _ in range(num_servers)
    ]
    events = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_entry,
            args=(s, num_servers, topology, options, inboxes, events),
            daemon=True,
            name=f"repro-mp-worker-{s}",
        )
        for s in range(num_servers)
    ]

    actions = sorted(
        range(len(options.actions)),
        key=lambda i: options.actions[i].at_tuples,
    )
    pending = list(actions)
    emitted_by: Dict[int, int] = {}
    finished: set = set()
    reconfigured: set = set()
    results: Dict[int, dict] = {}
    epoch = 0
    in_flight: Optional[int] = None

    wall_start = time.perf_counter()
    deadline = time.monotonic() + options.mp_timeout_s

    def partial() -> dict:
        return {
            "emitted": dict(emitted_by),
            "finished": sorted(finished),
            "results": sorted(results),
        }

    def coordinator_put(server: int, message) -> None:
        while True:
            try:
                inboxes[server].put(message, timeout=_POLL_S)
                return
            except _queue.Full:
                if not procs[server].is_alive():
                    raise MultiprocessBackendError(
                        f"worker {server} died with a full inbound "
                        f"queue (exitcode {procs[server].exitcode})",
                        reason="worker-crash",
                        server=server,
                        exitcode=procs[server].exitcode,
                        partial=partial(),
                    )
                if time.monotonic() > deadline:
                    raise MultiprocessBackendError(
                        f"timed out after {options.mp_timeout_s:g}s "
                        f"blocked on worker {server}'s inbound queue",
                        reason="timeout",
                        server=server,
                        partial=partial(),
                    )

    def maybe_reconfigure() -> None:
        nonlocal epoch, in_flight
        if in_flight is not None or not pending:
            return
        next_action = options.actions[pending[0]]
        total = sum(emitted_by.values())
        if total >= next_action.at_tuples or finished == set(
            range(num_servers)
        ):
            index = pending.pop(0)
            epoch += 1
            in_flight = epoch
            reconfigured.clear()
            for server in range(num_servers):
                coordinator_put(server, ("RECONFIG", epoch, index))

    def maybe_stop() -> None:
        if (
            in_flight is None
            and not pending
            and finished == set(range(num_servers))
        ):
            for server in range(num_servers):
                coordinator_put(server, ("STOP",))

    try:
        for proc in procs:
            proc.start()
        while len(results) < num_servers:
            if time.monotonic() > deadline:
                raise MultiprocessBackendError(
                    f"multiprocess run exceeded mp_timeout_s="
                    f"{options.mp_timeout_s:g}s "
                    f"({len(results)}/{num_servers} workers reported)",
                    reason="timeout",
                    partial=partial(),
                )
            for server, proc in enumerate(procs):
                # Exit code 0 with a pending RESULT is a normal finish
                # (the queue feeder can outlive the process); anything
                # else before the result lands is a crash.
                if (
                    server not in results
                    and not proc.is_alive()
                    and proc.exitcode != 0
                ):
                    raise MultiprocessBackendError(
                        f"worker {server} exited with code "
                        f"{proc.exitcode} before reporting its result",
                        reason="worker-crash",
                        server=server,
                        exitcode=proc.exitcode,
                        partial=partial(),
                    )
            try:
                event = events.get(timeout=_POLL_S)
            except _queue.Empty:
                continue
            tag = event[0]
            if tag == "PROGRESS":
                emitted_by[event[1]] = event[2]
                maybe_reconfigure()
            elif tag == "FINISHED":
                finished.add(event[1])
                maybe_reconfigure()
                maybe_stop()
            elif tag == "RECONFIGURED":
                if event[1] == in_flight:
                    reconfigured.add(event[2])
                    if reconfigured == set(range(num_servers)):
                        in_flight = None
                        maybe_reconfigure()
                        maybe_stop()
            elif tag == "RESULT":
                results[event[1]] = event[2]
            elif tag == "ERROR":
                raise MultiprocessBackendError(
                    f"worker {event[1]} failed:\n{event[2]}",
                    reason="worker-error",
                    server=event[1],
                    partial=partial(),
                )
        wall = time.perf_counter() - wall_start
        for proc in procs:
            proc.join(timeout=10)
    finally:
        _teardown(procs, inboxes, events)

    return _assemble(topology, options, results, wall, "multiprocess")


def _assemble(
    topology, options, results: Dict[int, dict], wall: float, name: str
) -> "BackendResult":
    from repro.engine.backends import BackendResult

    workers = [results[s] for s in sorted(results)]

    widths: Dict[str, int] = {}
    for worker in workers:
        for op, width in worker["widths"].items():
            widths[op] = max(widths.get(op, 0), width)

    emitted = sum(
        sum(per_instance.values())
        for worker in workers
        for per_instance in worker["emitted"].values()
    )

    stream_locality: Dict[str, float] = {}
    local_sum = 0
    total_sum = 0
    for stream in topology.streams:
        local = sum(
            worker["stream_counts"][stream.name][0] for worker in workers
        )
        total = sum(
            worker["stream_counts"][stream.name][1] for worker in workers
        )
        stream_locality[stream.name] = local / total if total else 1.0
        local_sum += local
        total_sum += total

    processed: Dict[str, int] = {}
    received: Dict[str, List[int]] = {}
    load_balance: Dict[str, float] = {}
    per_key_totals: Dict[str, Dict[Any, int]] = {}
    key_instances: Dict[str, Dict[Any, Tuple[int, ...]]] = {}
    for op in topology.bolts:
        processed[op.name] = sum(
            worker["processed"].get(op.name, 0) for worker in workers
        )
        counts = [0] * widths[op.name]
        for worker in workers:
            for instance, count in worker["received"][op.name].items():
                counts[instance] += count
        received[op.name] = counts
        mean = sum(counts) / len(counts) if counts else 0.0
        load_balance[op.name] = max(counts) / mean if mean else 1.0
        totals: Dict[Any, int] = {}
        holders: Dict[Any, List[int]] = {}
        stateful = False
        for worker in workers:
            for instance, state in worker["state"][op.name].items():
                stateful = True
                for key, value in state.items():
                    totals[key] = totals.get(key, 0) + value
                    holders.setdefault(key, []).append(instance)
        if stateful and totals:
            per_key_totals[op.name] = totals
            key_instances[op.name] = {
                key: tuple(sorted(instances))
                for key, instances in holders.items()
            }

    op_stats = merge_op_stats(worker["op_stats"] for worker in workers)
    per_server = {
        worker["server"]: {
            "cpu_ns": worker["cpu_ns"],
            "ipc_tx_bytes": worker["ipc_tx_bytes"],
            "ipc_rx_bytes": worker["ipc_rx_bytes"],
            "ipc_tx_msgs": worker["ipc_tx_msgs"],
            "ipc_rx_msgs": worker["ipc_rx_msgs"],
        }
        for worker in workers
    }
    cpu_ns_max = max((w["cpu_ns"] for w in workers), default=0)
    total_processed = sum(processed.values())
    return BackendResult(
        backend=name,
        wall_s=wall,
        sim_s=cpu_ns_max / 1e9,
        tuples_emitted=emitted,
        processed=processed,
        tuples_per_s=total_processed / wall if wall > 0 else 0.0,
        locality=(local_sum / total_sum) if total_sum else 1.0,
        stream_locality=stream_locality,
        load_balance=load_balance,
        received=received,
        per_key_totals=per_key_totals,
        key_instances=key_instances,
        op_stats={
            op_name: stats.as_dict()
            for op_name, stats in op_stats.items()
        },
        fingerprint=None,
        handle=None,
        measured={
            "per_server": per_server,
            "cpu_ns_total": sum(w["cpu_ns"] for w in workers),
            "ipc_bytes_total": sum(w["ipc_tx_bytes"] for w in workers),
            "ipc_msgs_total": sum(w["ipc_tx_msgs"] for w in workers),
        },
    )
