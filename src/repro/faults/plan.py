"""Declarative fault plans for chaos-testing the control plane.

A :class:`FaultPlan` lists deterministic fault rules; the
:class:`~repro.faults.injector.FaultInjector` attaches them to a
deployment through three optional interception hooks:

- ``BaseExecutor.deliver_control`` — per-delivery faults on the in-band
  control messages (PROPAGATE / MIGRATE): drop, delay, duplicate,
  reorder, or crash-on-arrival (:class:`ControlFault`);
- ``Simulator.interceptor`` — faults on the out-of-band manager↔POI
  RPC legs (GET_METRICS / SEND_METRICS / SEND_RECONF / ACK_RECONF):
  drop or delay (:class:`RpcFault`);
- ``Network.fault_hook`` — extra wire latency between chosen servers
  (:class:`LinkDelay`), which can reorder deliveries across senders;

plus time-triggered POI crashes (:class:`CrashAt`), which reuse the
engine's crash/restart machinery.

Rules are matched in declaration order and each rule fires at most
``max_matches`` times, so a plan describes a finite, reproducible set
of injected faults — the chaos tests rely on that determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import FaultInjectionError

#: fault actions
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
REORDER = "reorder"
CRASH = "crash"

_CONTROL_ACTIONS = (DROP, DELAY, DUPLICATE, REORDER, CRASH)
_RPC_ACTIONS = (DROP, DELAY)

#: protocol steps an RpcFault may target, mapped to the manager method
#: that executes the corresponding RPC leg
RPC_STEPS = {
    "GET_METRICS": "_rpc_get_metrics",
    "SEND_METRICS": "_on_metrics",
    "SEND_RECONF": "_rpc_send_reconf",
    "ACK_RECONF": "_on_ack",
}


def control_round_id(msg) -> Optional[int]:
    """Round id carried by a PROPAGATE (int payload) or MIGRATE
    (MigratePayload) control message; None for anything else."""
    payload = msg.payload
    if isinstance(payload, int):
        return payload
    return getattr(payload, "round_id", None)


@dataclass
class ControlFault:
    """One rule against in-band control-message deliveries.

    ``None`` fields match anything. ``reorder`` holds the matched
    message and redelivers it right after the *next* control message
    reaching the same executor (an adjacent swap, the minimal FIFO
    violation). ``crash`` kills the destination POI the instant the
    matched message arrives — losing the message with it — and lets the
    supervisor restart it ``down_s`` seconds later.
    """

    action: str
    kind: Optional[str] = None  # PROPAGATE / MIGRATE / None = any
    dst_op: Optional[str] = None
    dst_instance: Optional[int] = None
    sender: Optional[str] = None
    round_id: Optional[int] = None
    max_matches: int = 1
    delay_s: float = 0.0  # for ``delay``
    down_s: float = 0.0  # for ``crash``
    #: how many times this rule has fired (runtime counter)
    matched: int = 0

    def validate(self) -> None:
        if self.action not in _CONTROL_ACTIONS:
            raise FaultInjectionError(
                f"unknown control fault action {self.action!r}"
            )
        if self.action == DELAY and self.delay_s <= 0:
            raise FaultInjectionError("delay fault needs delay_s > 0")
        if self.max_matches < 1:
            raise FaultInjectionError("max_matches must be >= 1")

    def matches(self, executor, msg) -> bool:
        if self.matched >= self.max_matches:
            return False
        if self.kind is not None and msg.kind != self.kind:
            return False
        if self.dst_op is not None and executor.op_name != self.dst_op:
            return False
        if (
            self.dst_instance is not None
            and executor.instance != self.dst_instance
        ):
            return False
        if self.sender is not None and msg.sender != self.sender:
            return False
        if (
            self.round_id is not None
            and control_round_id(msg) != self.round_id
        ):
            return False
        return True


@dataclass
class RpcFault:
    """Drop or delay one leg of the out-of-band manager↔POI RPCs."""

    action: str
    step: Optional[str] = None  # key of RPC_STEPS; None = any leg
    max_matches: int = 1
    delay_s: float = 0.0
    matched: int = 0

    def validate(self) -> None:
        if self.action not in _RPC_ACTIONS:
            raise FaultInjectionError(
                f"unknown rpc fault action {self.action!r}"
            )
        if self.step is not None and self.step not in RPC_STEPS:
            raise FaultInjectionError(
                f"unknown rpc step {self.step!r}; one of {sorted(RPC_STEPS)}"
            )
        if self.action == DELAY and self.delay_s <= 0:
            raise FaultInjectionError("delay fault needs delay_s > 0")

    def matches(self, method_name: str) -> bool:
        if self.matched >= self.max_matches:
            return False
        if self.step is not None and RPC_STEPS[self.step] != method_name:
            return False
        return True


@dataclass
class LinkDelay:
    """Extra propagation latency on transfers between two servers."""

    src_server: Optional[int] = None
    dst_server: Optional[int] = None
    extra_s: float = 0.0
    #: only slow down control messages (data stays untouched)
    control_only: bool = True
    max_matches: Optional[int] = None  # None = unlimited
    matched: int = 0

    def validate(self) -> None:
        if self.extra_s <= 0:
            raise FaultInjectionError("link delay needs extra_s > 0")


@dataclass
class CrashAt:
    """Crash ``op[instance]`` at an absolute simulated time; the
    supervisor restarts it (with empty state) ``down_s`` later."""

    op: str
    instance: int
    at_s: float
    down_s: float = 0.0


@dataclass
class FaultPlan:
    """A deterministic set of faults to inject into one run."""

    control: List[ControlFault] = field(default_factory=list)
    rpcs: List[RpcFault] = field(default_factory=list)
    links: List[LinkDelay] = field(default_factory=list)
    crashes: List[CrashAt] = field(default_factory=list)

    def validate(self) -> None:
        for rule in self.control:
            rule.validate()
        for rule in self.rpcs:
            rule.validate()
        for rule in self.links:
            rule.validate()

    @property
    def empty(self) -> bool:
        return not (self.control or self.rpcs or self.links or self.crashes)
