"""Tests for the offline analysis path."""

import pytest

from repro.core import offline_tables
from repro.core.offline import keygraph_from_pairs
from repro.engine import (
    Cluster,
    CountBolt,
    RunConfig,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    run,
)
from repro.engine.operators import IteratorSpout


def test_keygraph_from_pairs_counts():
    graph = keygraph_from_pairs(
        [("asia", "#java"), ("asia", "#java"), ("asia", "#ruby")],
        "S->A",
        "A->B",
    )
    assert graph.pair_weight("S->A", "asia", "A->B", "#java") == 2
    assert graph.pair_weight("S->A", "asia", "A->B", "#ruby") == 1


def test_offline_tables_cover_sample_keys():
    pairs = [(i % 4, (i % 4) + 10) for i in range(1000)]
    tables, predicted = offline_tables(pairs, num_servers=2)
    assert set(tables) == {"S->A", "A->B"}
    for key in range(4):
        assert tables["S->A"].lookup(key) is not None
        assert tables["A->B"].lookup(key + 10) is not None
    # Each (k, k+10) pair can be fully co-located.
    assert predicted == 1.0


def test_offline_tables_colocate_correlated_keys():
    pairs = [(i % 4, (i % 4) + 10) for i in range(1000)]
    tables, _ = offline_tables(pairs, num_servers=2)
    for key in range(4):
        assert tables["S->A"].lookup(key) == tables["A->B"].lookup(key + 10)


def test_offline_tables_respect_max_edges():
    pairs = []
    for i in range(50):
        pairs.extend([(i, i + 100)] * (50 - i))
    tables, _ = offline_tables(pairs, num_servers=2, max_edges=10)
    assert len(tables["S->A"]) == 10


def test_offline_tables_custom_instance_mapping():
    pairs = [(0, 10), (1, 11)] * 50
    tables, _ = offline_tables(
        pairs, num_servers=2, server_to_instance={0: 3, 1: 4}
    )
    assert set(tables["S->A"].as_dict().values()) <= {3, 4}


def test_offline_tables_loaded_at_startup_give_locality():
    """The offline workflow end-to-end: mine a sample, preload the
    tables, run without any manager (Section 3.4 first paragraph)."""
    n = 2
    sample = [(i % n, (i % n) + 100) for i in range(2000)]
    tables, _ = offline_tables(sample, num_servers=n)

    def source(ctx):
        import random

        rng = random.Random(ctx.instance_index)
        while True:
            key = rng.randrange(n)
            yield (key, key + 100)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=n)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=n,
        inputs={"S": TableFieldsGrouping(0, table=tables["S->A"])},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=n,
        inputs={"A": TableFieldsGrouping(1, table=tables["A->B"])},
    )
    result = run(
        builder.build(),
        RunConfig(duration_s=0.1, warmup_s=0.02, num_servers=n),
    )
    assert result.stream_locality["A->B"] == 1.0
