"""Figure 14: average throughput vs parallelism (4 kB tuples,
1 Gb/s network), with and without reconfiguration.

Paper claims asserted:
- with reconfiguration, throughput grows with parallelism;
- the gap between the two configurations grows with parallelism.
"""

import pytest

from helpers import save_table
from repro.analysis.experiments import fig14
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig14(quick=quick)


def test_fig14_regenerate(rows, benchmark):
    benchmark.pedantic(lambda: fig14(quick=True), rounds=1, iterations=1)
    table = format_table(rows, title="Figure 14: avg throughput (1 Gb/s, 4 kB)")
    print()
    print(table)
    save_table("fig14", table)


def _series(rows, reconfigure):
    return {
        r["parallelism"]: r["throughput"]
        for r in rows
        if r["reconfigure"] is reconfigure
    }


def test_fig14_reconfiguration_always_wins(rows):
    with_reconf = _series(rows, True)
    without = _series(rows, False)
    for parallelism in with_reconf:
        assert with_reconf[parallelism] > without[parallelism]


def test_fig14_scales_with_parallelism(rows):
    with_reconf = _series(rows, True)
    parallelisms = sorted(with_reconf)
    assert with_reconf[parallelisms[-1]] > 1.2 * with_reconf[parallelisms[0]]


def test_fig14_gap_grows_with_parallelism(rows):
    with_reconf = _series(rows, True)
    without = _series(rows, False)
    parallelisms = sorted(with_reconf)
    low, high = parallelisms[0], parallelisms[-1]
    gap_low = with_reconf[low] - without[low]
    gap_high = with_reconf[high] - without[high]
    assert gap_high > gap_low
