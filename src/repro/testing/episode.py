"""One fuzz episode: a seeded build-run-check cycle.

An *episode* is the unit of fuzzing and of replay: from one
:class:`EpisodeConfig` (itself derived from a single seed) it builds a
cluster, a :class:`~repro.workloads.pairs.PairsWorkload` topology, a
manager with periodic reconfiguration, a conservation-safe fault plan,
and the full :class:`~repro.testing.invariants.InvariantSuite`; runs
the simulation to quiescence; and returns every violation plus the
simulator's event-sequence fingerprint.

Because every random decision flows from ``EpisodeConfig.seed``
through the :class:`~repro.testing.rng.RngTree` (and the config itself
is JSON-round-trippable), running the same config twice — in the same
or another process — produces the identical fingerprint, telemetry
trace, and violations. That is what makes a repro bundle a *proof*:
replaying it re-executes the failure, event for event.

``inject`` arms a deliberate bug (for testing the harness itself):

- ``"double_migrate"`` — one POI installs every migrated state batch
  twice, violating exactly-once migration and conservation;
- ``"held_leak"`` — one POI silently skips its first key release,
  leaking a held-key buffer past round end.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.compact_table import CompactTableConfig
from repro.core.manager import HybridConfig, Manager, ManagerConfig
from repro.engine.cluster import Cluster
from repro.engine.runner import deploy
from repro.engine.simulator import Simulator
from repro.faults import (
    FaultInjector,
    fault_plan_from_dict,
    fault_plan_to_dict,
    generate_fault_plan,
)
from repro.observability import MemorySink, attach_telemetry
from repro.testing.invariants import InvariantSuite, Violation
from repro.testing.rng import RngTree
from repro.workloads.pairs import PairsConfig, PairsWorkload

#: deliberate-bug names accepted by ``EpisodeConfig.inject``
INJECTIONS = ("double_migrate", "held_leak")


@dataclass
class EpisodeConfig:
    """Everything that determines one episode, JSON-round-trippable."""

    seed: int
    parallelism: int = 2
    keys: int = 32
    exponent: float = 1.0
    correlation: float = 0.7
    tuples_per_instance: int = 800
    period_s: float = 0.05
    round_timeout_s: float = 0.03
    rpc_latency_s: float = 1.0e-3
    imbalance: float = 1.03
    until_s: float = 0.3
    #: serialized fault plan (repro.faults.fault_plan_to_dict); empty
    #: dict = fault-free episode
    fault_plan: Dict = field(default_factory=dict)
    allow_crashes: bool = False
    #: scripted elastic rescales, ``[at_s, new_parallelism]`` pairs;
    #: each retries until the manager is free (or the run ends), so a
    #: rescale landing mid-round is exercised, not silently dropped
    rescales: List[List] = field(default_factory=list)
    #: hybrid routing: sources use HybridTableFieldsGrouping and the
    #: manager splits heavy hitters with these [hot_fraction,
    #: split_width, max_split_keys] settings; empty list = disabled
    hybrid: List = field(default_factory=list)
    #: ship PROPAGATE as TableDelta diffs against the receivers' base
    #: (docs/PROTOCOL.md); mirrors the ManagerConfig default
    delta_propagation: bool = True
    #: compact (fingerprint + front-filter) data-plane tables at the
    #: wire boundary, with the default CompactTableConfig knobs
    compact_tables: bool = False
    #: deliberate bug to arm (harness self-test); see INJECTIONS
    inject: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EpisodeConfig":
        return cls(**data)


@dataclass
class EpisodeResult:
    """Outcome of one episode."""

    config: EpisodeConfig
    violations: List[Violation]
    #: the simulator's event-sequence CRC (replay must match)
    fingerprint: int
    rounds: int
    rounds_completed: int
    rounds_aborted: int
    faults_injected: int
    telemetry_records: int
    #: simulated clock at the end of the drain (for derived rates)
    sim_now_s: float = 0.0
    #: total tuples the expected-count oracle says were processed
    tuples_processed: int = 0
    #: the in-memory telemetry sink, for trace-level comparisons
    sink: MemorySink = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return not self.violations


def generate_config(
    tree: RngTree, seed: int, rescale: bool = False, hybrid: bool = False
) -> EpisodeConfig:
    """Draw one episode's parameters from the RNG tree.

    ``seed`` is the episode seed (also stored in the config); all
    shape decisions come from the tree so the mapping seed → episode
    is stable across harness versions of the same tree layout.
    ``rescale`` additionally draws scripted mid-stream rescales, and
    ``hybrid`` draws hot-key-splitting settings, each from a *separate*
    RNG stream, so seed → base episode stays identical with and
    without either flag.
    """
    rng = tree.rng("episode", seed)
    parallelism = rng.choice((2, 2, 3, 4))
    until_s = rng.uniform(0.25, 0.4)
    config = EpisodeConfig(
        seed=seed,
        parallelism=parallelism,
        keys=rng.choice((16, 24, 32, 48)),
        exponent=rng.uniform(0.6, 1.4),
        correlation=rng.uniform(0.4, 0.95),
        tuples_per_instance=rng.randint(500, 1200),
        period_s=rng.uniform(0.04, 0.09),
        round_timeout_s=rng.uniform(0.02, 0.05),
        imbalance=rng.choice((1.03, 1.1, 1.2)),
        until_s=until_s,
    )
    if rng.random() < 0.8:  # most episodes run chaotic
        plan = generate_fault_plan(
            tree.rng("faults", seed),
            ops=("A", "B"),
            parallelism=parallelism,
            servers=parallelism,
            max_rules=4,
            allow_crashes=False,
            horizon_s=until_s,
        )
        config.fault_plan = fault_plan_to_dict(plan)
    if rescale:
        rescale_rng = tree.rng("rescale", seed)
        count = rescale_rng.choice((1, 1, 2))
        actions = []
        for _ in range(count):
            at_s = rescale_rng.uniform(0.05, until_s * 0.8)
            target = rescale_rng.choice((1, 2, 3, 4, 5))
            actions.append([round(at_s, 6), target])
        config.rescales = sorted(actions)
    if hybrid:
        hybrid_rng = tree.rng("hybrid", seed)
        config.hybrid = [
            round(hybrid_rng.uniform(0.3, 0.8), 6),  # hot_fraction
            hybrid_rng.choice((2, 2, 3)),  # split_width
            hybrid_rng.choice((2, 4, 8)),  # max_split_keys
        ]
    return config


def run_episode(config: EpisodeConfig) -> EpisodeResult:
    """Build, run to quiescence, and check one episode."""
    sim = Simulator()
    sim.enable_fingerprint()
    cluster = Cluster(sim, config.parallelism)
    workload = PairsWorkload(
        PairsConfig(
            parallelism=config.parallelism,
            keys=config.keys,
            exponent=config.exponent,
            correlation=config.correlation,
            seed=config.seed,
            tuples_per_instance=config.tuples_per_instance,
        )
    )
    hybrid = None
    if config.hybrid:
        hot_fraction, split_width, max_split_keys = config.hybrid
        hybrid = HybridConfig(
            hot_fraction=float(hot_fraction),
            split_width=int(split_width),
            max_split_keys=int(max_split_keys),
        )
    deployment = deploy(
        sim, cluster, workload.online_topology(hybrid=hybrid is not None)
    )
    manager = Manager(
        deployment,
        ManagerConfig(
            period_s=config.period_s,
            imbalance=config.imbalance,
            rpc_latency_s=config.rpc_latency_s,
            round_timeout_s=config.round_timeout_s,
            seed=config.seed,
            hybrid=hybrid,
            delta_propagation=config.delta_propagation,
            compact_tables=(
                CompactTableConfig() if config.compact_tables else None
            ),
        ),
    )
    sink = MemorySink()
    telemetry = attach_telemetry(deployment, manager, sink=sink)
    suite = InvariantSuite(
        deployment,
        manager,
        check_conservation=not config.allow_crashes,
    ).attach()

    injector = None
    if config.fault_plan:
        plan = fault_plan_from_dict(config.fault_plan)
        injector = FaultInjector(plan).attach(deployment, manager)

    if config.inject is not None:
        _arm_injection(config.inject, deployment)

    deployment.start()
    manager.start()
    for at_s, target in config.rescales:
        sim.schedule(
            at_s, _attempt_rescale, sim, manager, int(target), config.until_s
        )
    sim.run(until=config.until_s)
    manager.stop()
    sim.run()  # drain: spouts are finite, rounds deadline out
    a_counts, b_counts = workload.expected_counts()
    suite.final_check({"A": a_counts, "B": b_counts})
    telemetry.flush()
    deployment.close()

    return EpisodeResult(
        config=config,
        violations=list(suite.violations),
        fingerprint=sim.fingerprint,
        rounds=len(manager.rounds),
        rounds_completed=len(manager.completed_rounds),
        rounds_aborted=len(manager.aborted_rounds),
        faults_injected=injector.injected if injector is not None else 0,
        telemetry_records=len(sink.records),
        sim_now_s=sim.now,
        tuples_processed=(
            sum(a_counts.values()) + sum(b_counts.values())
        ),
        sink=sink,
    )


def _attempt_rescale(sim, manager, target, deadline_s) -> None:
    """Start a scripted rescale, retrying while the manager is busy.

    Mirrors what an operator (or the elasticity controller) does: a
    rescale that lands mid-round is re-attempted shortly after instead
    of being dropped, so fuzzing exercises the busy/again path too.
    Retries stop once the tier is already at ``target`` or the episode
    deadline has passed, so the drain phase still terminates.
    """
    if manager.tier_parallelism == target:
        return
    if sim.now >= deadline_s:
        return
    try:
        started = manager.rescale(target)
    except Exception:
        return  # e.g. target < 1 is never drawn, but stay safe
    if not started:
        sim.schedule(
            0.005, _attempt_rescale, sim, manager, target, deadline_s
        )


def _arm_injection(name: str, deployment) -> None:
    """Wire a deliberate bug into the deployment. Applied *after* the
    invariant suite wraps the seams, so the suite observes the buggy
    behaviour (that is the point: the harness must catch it)."""
    if name not in INJECTIONS:
        raise ValueError(
            f"unknown injection {name!r}; one of {INJECTIONS}"
        )
    victim = deployment.instances("B")[0]
    if name == "double_migrate":
        orig_install = victim.install_state

        def double_install(entries, _orig=orig_install):
            _orig(entries)
            if entries:
                _orig(entries)

        victim.install_state = double_install
    elif name == "held_leak":
        orig_release = victim.release_key
        state = {"skipped": False}

        def leaky_release(key, _orig=orig_release):
            if not state["skipped"]:
                state["skipped"] = True
                return
            _orig(key)

        victim.release_key = leaky_release
