"""PKG as a first-class mode: d-choices routing + downstream merge.

The pattern the groupings module documents: a PartialKeyGrouping
stream spreads each key over d candidate instances, the receiving
:class:`PartialCountBolt` holds *partial* counts and forwards
``(key, delta)`` records, and a fields-grouped :class:`SumBolt` merges
them back into exact totals. These tests pin both halves: the totals
are exact, and the hot key really was split upstream.
"""

import random
from collections import Counter

import pytest

from repro.engine import (
    Cluster,
    FieldsGrouping,
    PartialKeyGrouping,
    Simulator,
    TopologyBuilder,
    deploy,
)
from repro.engine.grouping import candidate_instances, stable_hash
from repro.engine.operators import (
    IteratorSpout,
    PartialCountBolt,
    SumBolt,
)

SPOUTS = 2
PER_SPOUT = 4000
TAIL_KEYS = 50
#: the flash key. Candidates can collide ("HOT" hashes all d choices
#: onto one instance under this stream's seed — a legal degenerate
#: split); "H" has distinct candidates, so the split is observable.
HOT = "H"


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        if rng.random() < 0.5:
            yield (HOT,)
        else:
            yield (f"k{rng.randrange(TAIL_KEYS)}",)


def _exact_counts():
    counts = Counter()
    for i in range(SPOUTS):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            if rng.random() < 0.5:
                counts[HOT] += 1
            else:
                counts[f"k{rng.randrange(TAIL_KEYS)}"] += 1
    return counts


def _run(d=2, emit_every=1):
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=SPOUTS)
    builder.bolt(
        "A",
        lambda: PartialCountBolt(0, emit_every=emit_every),
        parallelism=4,
        inputs={"S": PartialKeyGrouping(0, d=d)},
    )
    builder.bolt(
        "B",
        lambda: SumBolt(key=0, value=1),
        parallelism=2,
        inputs={"A": FieldsGrouping(0)},
    )
    sim = Simulator()
    cluster = Cluster(sim, 4)
    deployment = deploy(sim, cluster, builder.build())
    deployment.start()
    sim.run()
    return deployment


def _merged_totals(deployment):
    totals = Counter()
    for executor in deployment.instances("B"):
        for key, count in executor.operator.state.items():
            totals[key] += count
    return totals


def test_merge_stage_recovers_exact_totals():
    deployment = _run(d=2)
    assert _merged_totals(deployment) == _exact_counts()


def test_hot_key_splits_and_partials_sum_to_total():
    deployment = _run(d=3)
    exact = _exact_counts()

    candidates = set(
        candidate_instances(HOT, stable_hash("S->A"), 4, 3)
    )
    assert len(candidates) >= 2  # guards the key choice above
    holders = {
        executor.instance
        for executor in deployment.instances("A")
        if executor.operator.count(HOT) > 0
    }
    assert holders == candidates, "the hot key never split across instances"
    totals = sum(
        e.operator.count(HOT) for e in deployment.instances("A")
    )
    assert totals == exact[HOT]

    # The merge stage agrees with the partials, key by key.
    assert _merged_totals(deployment) == exact


def test_batched_deltas_stay_exact_at_quiescence():
    """emit_every > 1 batches deltas; pending remainders flush at the
    next multiple, so totals can only be audited for keys whose count
    is a multiple — use the all-keys sum instead, which must match
    the partial counters exactly."""
    deployment = _run(d=2, emit_every=1)
    totals = _merged_totals(deployment)
    partials = Counter()
    for executor in deployment.instances("A"):
        for key, count in executor.operator.state.items():
            partials[key] += count
    assert totals == partials


def test_partial_count_bolt_rejects_bad_emit_every():
    with pytest.raises(ValueError):
        PartialCountBolt(0, emit_every=0)
