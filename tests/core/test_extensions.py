"""Tests for the future-work extensions: the reconfiguration benefit
estimator and rack-aware hierarchical assignment."""

import pytest

from repro.core import KeyGraph, RoutingTable, plan_reconfiguration
from repro.core.assignment import RoutedStream
from repro.core.estimator import (
    Estimate,
    EstimatorConfig,
    ReconfigurationEstimator,
)
from repro.core.hierarchical import (
    assignment_quality,
    compute_hierarchical_assignment,
)
from repro.errors import PartitioningError


def _graph(pairs):
    graph = KeyGraph()
    for (k1, k2), count in pairs.items():
        graph.add_pair("S->A", k1, "A->B", k2, count)
    return graph


def _streams(n):
    return [
        RoutedStream("S->A", "S", "A", list(range(n))),
        RoutedStream("A->B", "A", "B", list(range(n))),
    ]


class TestEstimator:
    def test_predicted_locality_hash_baseline(self):
        graph = _graph({(f"k{i}", f"v{i}"): 10 for i in range(60)})
        estimator = ReconfigurationEstimator()
        locality = estimator.predicted_locality(graph, {}, _streams(4))
        assert locality == pytest.approx(0.25, abs=0.12)

    def test_predicted_locality_perfect_tables(self):
        graph = _graph({(f"k{i}", f"v{i}"): 10 for i in range(8)})
        tables = {
            "S->A": RoutingTable({f"k{i}": i % 2 for i in range(8)}),
            "A->B": RoutingTable({f"v{i}": i % 2 for i in range(8)}),
        }
        estimator = ReconfigurationEstimator()
        locality = estimator.predicted_locality(graph, tables, _streams(2))
        assert locality == 1.0

    def test_evaluate_reports_gain_and_cost(self):
        graph = _graph({(f"k{i}", f"v{i}"): 100 for i in range(12)})
        streams = _streams(2)
        plan = plan_reconfiguration(graph, streams, 2, {})
        estimator = ReconfigurationEstimator(
            EstimatorConfig(horizon_tuples=10_000)
        )
        estimate = estimator.evaluate(graph, plan, {}, streams)
        assert estimate.locality_after >= estimate.locality_before
        assert estimate.moved_keys == plan.total_moved_keys()
        assert estimate.cost_bytes == estimate.moved_keys * 64
        assert estimate.locality_gain >= 0.0

    def test_short_horizon_vetoes_deployment(self):
        graph = _graph({(f"k{i}", f"v{i}"): 100 for i in range(12)})
        streams = _streams(2)
        plan = plan_reconfiguration(graph, streams, 2, {})
        generous = ReconfigurationEstimator(
            EstimatorConfig(horizon_tuples=10_000_000)
        )
        stingy = ReconfigurationEstimator(
            EstimatorConfig(horizon_tuples=1)
        )
        assert generous.should_deploy(graph, plan, {}, streams)
        if plan.total_moved_keys() > 0:
            assert not stingy.should_deploy(graph, plan, {}, streams)

    def test_no_gain_means_no_benefit(self):
        graph = _graph({("a", "b"): 100})
        streams = _streams(2)
        plan = plan_reconfiguration(graph, streams, 2, {})
        estimator = ReconfigurationEstimator()
        # Deploying the same tables twice gains nothing.
        estimate = estimator.evaluate(graph, plan, plan.tables, streams)
        assert estimate.locality_gain == pytest.approx(0.0)
        assert estimate.benefit_bytes == 0.0

    def test_estimate_worthwhile_margins(self):
        estimate = Estimate(
            locality_before=0.2,
            locality_after=0.5,
            moved_keys=10,
            benefit_bytes=1000.0,
            cost_bytes=600.0,
        )
        assert estimate.worthwhile
        assert estimate.worthwhile_with_margin(1.5)
        assert not estimate.worthwhile_with_margin(2.0)


class TestManagerWithEstimator:
    def test_vetoed_round_keeps_hash_routing(self):
        import random

        from repro.core import Manager, ManagerConfig
        from repro.engine import (
            Cluster,
            CountBolt,
            Simulator,
            TableFieldsGrouping,
            TopologyBuilder,
            deploy,
        )
        from repro.engine.operators import IteratorSpout

        def source(ctx):
            rng = random.Random(ctx.instance_index)
            for _ in range(20000):
                key = rng.randrange(8)
                yield (key, key + 100)

        builder = TopologyBuilder()
        builder.spout("S", lambda: IteratorSpout(source), parallelism=2)
        builder.bolt(
            "A", lambda: CountBolt(0), parallelism=2,
            inputs={"S": TableFieldsGrouping(0)},
        )
        builder.bolt(
            "B", lambda: CountBolt(1, forward=False), parallelism=2,
            inputs={"A": TableFieldsGrouping(1)},
        )
        sim = Simulator()
        deployment = deploy(sim, Cluster(sim, 2), builder.build())
        manager = Manager(
            deployment,
            ManagerConfig(
                period_s=0.05,
                estimator=ReconfigurationEstimator(
                    EstimatorConfig(horizon_tuples=1)  # never worth it
                ),
            ),
        )
        manager.start()
        deployment.start()
        sim.run(until=0.2)
        manager.stop()
        sim.run()
        effective = [r for r in manager.completed_rounds if r.plan]
        assert effective
        assert all(r.vetoed for r in effective)
        assert manager.current_tables == {}  # nothing deployed


class TestHierarchical:
    def _correlated_graph(self, groups=8, weight=100):
        graph = KeyGraph()
        for i in range(groups):
            graph.add_pair("S->A", f"k{i}", "A->B", f"v{i}", weight + i)
        return graph

    def test_validation(self):
        graph = self._correlated_graph()
        with pytest.raises(PartitioningError):
            compute_hierarchical_assignment(graph, [[0, 1], [1, 2]])
        with pytest.raises(PartitioningError):
            compute_hierarchical_assignment(graph, [[0], []])
        with pytest.raises(PartitioningError):
            compute_hierarchical_assignment(graph, [])

    def test_single_rack_equals_flat_partitioning(self):
        graph = self._correlated_graph()
        assignment = compute_hierarchical_assignment(graph, [[0, 1, 2]])
        assert set(assignment.parts.values()) <= {0, 1, 2}
        quality = assignment_quality(graph, assignment, [[0, 1, 2]])
        assert quality.same_server == pytest.approx(1.0)

    def test_two_racks_assignment_covers_all_servers_keys(self):
        graph = self._correlated_graph(groups=12)
        racks = [[0, 1], [2, 3]]
        assignment = compute_hierarchical_assignment(graph, racks)
        assert len(assignment.parts) == 24
        assert set(assignment.parts.values()) <= {0, 1, 2, 3}

    def test_correlated_pairs_stay_server_local(self):
        graph = self._correlated_graph(groups=12)
        racks = [[0, 1], [2, 3]]
        assignment = compute_hierarchical_assignment(graph, racks)
        quality = assignment_quality(graph, assignment, racks)
        assert quality.same_server > 0.9

    def test_rack_locality_beats_flat_when_servers_are_tight(self):
        """A clique of keys too heavy for one server: hierarchical
        placement keeps it inside one rack, flat partitioning may
        spread it across racks."""
        graph = KeyGraph()
        # One tight community of 6 keys, pairwise linked.
        for i in range(6):
            for j in range(6):
                graph.add_pair("S->A", f"k{i}", "A->B", f"v{j}", 50)
        # Background singletons to fill the other servers.
        for i in range(30):
            graph.add_pair("S->A", f"x{i}", "A->B", f"y{i}", 20)
        racks = [[0, 1], [2, 3]]
        hierarchical = compute_hierarchical_assignment(graph, racks, seed=1)
        quality = assignment_quality(graph, hierarchical, racks)
        # Whatever cannot be server-local should mostly stay rack-local.
        assert quality.cross_rack < 0.35
        assert quality.weighted_cost() <= (
            quality.same_rack + quality.cross_rack
        ) * 4.0

    def test_quality_empty_graph(self):
        graph = KeyGraph()
        assignment = compute_hierarchical_assignment(
            graph, [[0], [1]]
        )
        quality = assignment_quality(graph, assignment, [[0], [1]])
        assert quality.same_server == 1.0
        assert quality.weighted_cost() == 0.0
