"""Seeded random fault-plan generation for the fuzz harness.

:func:`generate_fault_plan` draws a :class:`~repro.faults.plan.FaultPlan`
from a caller-supplied ``random.Random``, so that a single seed fully
determines the chaos a fuzz episode experiences (repro.testing derives
that RNG from the episode seed).

The generator is *conservation-safe by construction*: it only emits
fault combinations under which the protocol's state-total invariant is
expected to hold, so any violation a fuzz run finds is a real bug, not
an artefact of an unrecoverable fault:

- MIGRATE messages carry extracted state. Dropping one — or reordering
  it into a hold that may never redeliver — destroys counts by design,
  so MIGRATE is only ever *delayed* or *duplicated* (both absorbed by
  the agent's per-(round, sender) dedup and stale-install paths).
- PROPAGATE carries no state, so it may additionally be dropped or
  reordered; the manager's round deadline aborts the wedged round.
- RPC legs may be dropped or delayed freely (they never route data).
- Link delays are restricted to control traffic.
- Crashes lose a POI's state by definition; they are generated only
  when ``allow_crashes=True``, and callers must then disarm any
  conservation check.

The plan is also round-trippable to plain JSON data
(:func:`fault_plan_to_dict` / :func:`fault_plan_from_dict`) so repro
bundles can embed the exact plan alongside the seed.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

from repro.faults.plan import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    RPC_STEPS,
    ControlFault,
    CrashAt,
    FaultPlan,
    LinkDelay,
    RpcFault,
)

#: actions that preserve the state-total invariant, per message kind
SAFE_CONTROL_ACTIONS = {
    "PROPAGATE": (DROP, DELAY, DUPLICATE, REORDER),
    "MIGRATE": (DELAY, DUPLICATE),
}


def generate_fault_plan(
    rng: random.Random,
    *,
    ops: Sequence[str] = ("A", "B"),
    parallelism: int = 2,
    servers: int = 2,
    max_rules: int = 4,
    allow_crashes: bool = False,
    horizon_s: float = 0.5,
) -> FaultPlan:
    """Draw a deterministic, conservation-safe fault plan.

    Parameters
    ----------
    rng:
        Sole source of randomness; same state → same plan.
    ops:
        Stateful operators rules may target (``dst_op``); each rule may
        also stay unscoped (match any destination).
    parallelism:
        Instances per op, bounding ``dst_instance`` draws.
    servers:
        Cluster size, bounding link-delay endpoints.
    max_rules:
        Upper bound on the number of rules (>= 1 rule is always drawn
        so a "chaotic" episode is never silently fault-free).
    allow_crashes:
        Also draw crash-on-arrival and timed crashes. These destroy
        state — the caller must disarm conservation checking.
    horizon_s:
        Rough episode length; delays and crash times scale with it.
    """
    n_rules = rng.randint(1, max(1, max_rules))
    plan = FaultPlan()
    kinds = ["control", "control", "rpc", "link"]  # bias toward control
    if allow_crashes:
        kinds.append("crash")
    for _ in range(n_rules):
        kind = rng.choice(kinds)
        if kind == "control":
            plan.control.append(
                _random_control_fault(
                    rng, ops, parallelism, allow_crashes, horizon_s
                )
            )
        elif kind == "rpc":
            plan.rpcs.append(_random_rpc_fault(rng, horizon_s))
        elif kind == "link":
            plan.links.append(_random_link_delay(rng, servers, horizon_s))
        else:
            plan.crashes.append(
                _random_crash(rng, ops, parallelism, horizon_s)
            )
    plan.validate()
    return plan


def _random_control_fault(
    rng: random.Random,
    ops: Sequence[str],
    parallelism: int,
    allow_crashes: bool,
    horizon_s: float,
) -> ControlFault:
    msg_kind = rng.choice(("PROPAGATE", "PROPAGATE", "MIGRATE"))
    actions = list(SAFE_CONTROL_ACTIONS[msg_kind])
    if allow_crashes:
        actions.append(CRASH)
    action = rng.choice(actions)
    dst_op: Optional[str] = rng.choice([None, *ops])
    dst_instance: Optional[int] = (
        rng.randrange(parallelism) if dst_op is not None and rng.random() < 0.5
        else None
    )
    return ControlFault(
        action=action,
        kind=msg_kind,
        dst_op=dst_op,
        dst_instance=dst_instance,
        max_matches=rng.randint(1, 2),
        delay_s=_small_delay(rng, horizon_s) if action == DELAY else 0.0,
        down_s=_small_delay(rng, horizon_s) if action == CRASH else 0.0,
    )


def _random_rpc_fault(rng: random.Random, horizon_s: float) -> RpcFault:
    action = rng.choice((DROP, DELAY))
    return RpcFault(
        action=action,
        step=rng.choice([None, *sorted(RPC_STEPS)]),
        max_matches=rng.randint(1, 2),
        delay_s=_small_delay(rng, horizon_s) if action == DELAY else 0.0,
    )


def _random_link_delay(
    rng: random.Random, servers: int, horizon_s: float
) -> LinkDelay:
    src = rng.choice([None, rng.randrange(servers)])
    dst = rng.choice([None, rng.randrange(servers)])
    return LinkDelay(
        src_server=src,
        dst_server=dst,
        extra_s=_small_delay(rng, horizon_s),
        control_only=True,
        max_matches=rng.randint(1, 4),
    )


def _random_crash(
    rng: random.Random,
    ops: Sequence[str],
    parallelism: int,
    horizon_s: float,
) -> CrashAt:
    return CrashAt(
        op=rng.choice(list(ops)),
        instance=rng.randrange(parallelism),
        at_s=rng.uniform(0.05, max(0.1, horizon_s * 0.8)),
        down_s=_small_delay(rng, horizon_s),
    )


def _small_delay(rng: random.Random, horizon_s: float) -> float:
    """A delay between ~1% and ~25% of the episode horizon — long
    enough to push deliveries past a round deadline sometimes, short
    enough that episodes still quiesce."""
    return rng.uniform(0.01, 0.25) * horizon_s


# ----------------------------------------------------------------------
# JSON round-tripping (repro bundles embed the exact plan)
# ----------------------------------------------------------------------

_RULE_TYPES = {
    "control": ControlFault,
    "rpcs": RpcFault,
    "links": LinkDelay,
    "crashes": CrashAt,
}


def fault_plan_to_dict(plan: FaultPlan) -> Dict[str, List[dict]]:
    """Serialize a plan to JSON-ready data (runtime ``matched``
    counters are stripped — a deserialized plan starts fresh)."""
    out: Dict[str, List[dict]] = {}
    for field_name in _RULE_TYPES:
        rules = []
        for rule in getattr(plan, field_name):
            data = asdict(rule)
            data.pop("matched", None)
            rules.append(data)
        out[field_name] = rules
    return out


def fault_plan_from_dict(data: Dict[str, List[dict]]) -> FaultPlan:
    """Rebuild a plan serialized by :func:`fault_plan_to_dict`."""
    plan = FaultPlan()
    for field_name, rule_type in _RULE_TYPES.items():
        for entry in data.get(field_name, []):
            entry = dict(entry)
            entry.pop("matched", None)
            getattr(plan, field_name).append(rule_type(**entry))
    plan.validate()
    return plan
