"""What one campaign cell runs.

Four runners are registered:

``episode``
    A fuzz-grade deployment episode (``repro.testing``): PairsWorkload
    topology, periodic reconfiguration, the full invariant suite armed,
    simulator event fingerprint enabled. Boolean axes toggle features —
    ``hybrid`` (hot-key splitting), ``rescale`` (scripted mid-stream
    rescales), ``faults`` (a conservation-safe chaos plan),
    ``delta_propagation`` and ``compact_tables`` (wire-format flags) —
    while structured sub-configs (the fault plan, the rescale schedule,
    the hybrid knobs) are drawn deterministically from the cell seed,
    so the same cell id always runs the identical episode and must
    reproduce the identical fingerprint.

``fig13``
    One (bandwidth, padding) point of the Figure 13 locality sweep,
    with and without reconfiguration, ported from
    ``benchmarks/bench_fig13.py``.

``skew``
    One (exponent, flash_share, policy) point of the PR 6 skew
    experiment, ported from the ``skew`` figure.

``backend``
    Cross-backend equivalence (DESIGN.md §15/§16): run one scenario
    (``fig13`` / ``skew`` / ``rescale``) on the reference DES and a
    candidate backend (``candidate: vectorized`` | ``multiprocess``,
    default vectorized) from identical finite inputs, compare with
    :func:`repro.testing.equivalence.compare_backends`, and report the
    speedup. Any broken invariant lands in the cell's ``violations``
    exactly like an episode-cell invariant breach, so the campaign
    report gates it. Multiprocess cells additionally report the
    *measured* per-run CPU ns and inter-process bytes. ``backend:
    reference`` / ``backend: vectorized`` run one side only (for
    timing axes).

``fig10`` / ``fig11`` / ``fig12``
    The trace-sweep grids ported from ``benchmarks/bench_fig1*.py``:
    the flash-hashtag location/day spread (fig10), one routing mode of
    the 25-week locality/balance sweep (fig11), and one
    (budget, parallelism) point of locality-vs-collected-edges
    (fig12). The paper claims the bench files assert become cell
    violations; the figure metrics are baseline-tracked.

Every runner returns a :class:`CellOutcome` whose ``metrics`` follow
the ``tools/bench_record.py`` axis convention (``*_per_s`` higher is
better; unsuffixed metrics get their direction from the campaign's
``axes:`` mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: EpisodeConfig scalar fields a campaign may set directly (defaults
#: or matrix axes); feature toggles and seeds are handled separately.
EPISODE_PARAMS = (
    "parallelism",
    "keys",
    "exponent",
    "correlation",
    "tuples_per_instance",
    "period_s",
    "round_timeout_s",
    "rpc_latency_s",
    "imbalance",
    "until_s",
)

#: boolean feature toggles of the episode runner
EPISODE_FLAGS = (
    "hybrid",
    "rescale",
    "faults",
    "delta_propagation",
    "compact_tables",
)

#: non-boolean episode extras: ``inject`` arms a deliberate bug
#: (harness self-test, mirrors ``python -m repro.testing.fuzz --inject``)
EPISODE_EXTRAS = ("inject",)


@dataclass
class CellOutcome:
    """What one cell produced (worker-side; JSON-serializable)."""

    metrics: Dict[str, float] = field(default_factory=dict)
    #: simulator event-sequence fingerprint (episode cells), hex string
    fingerprint: Optional[str] = None
    violations: List[dict] = field(default_factory=list)
    #: repro bundle payload for a failing episode cell (written next to
    #: the report by the worker so the failure replays anywhere)
    bundle: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _unknown(params: Dict[str, Any], allowed: set, runner: str) -> None:
    extra = sorted(set(params) - allowed)
    if extra:
        raise ValueError(
            f"{runner} runner got unknown parameter(s) "
            f"{', '.join(map(repr, extra))}; allowed: {sorted(allowed)}"
        )


def episode_config(params: Dict[str, Any], seed: int):
    """Derive the deterministic EpisodeConfig for one cell.

    Unlike the fuzz driver's ``generate_config`` (which randomizes the
    episode *shape*), a campaign cell is explicit: scalars come from
    the campaign file, and only the structured sub-plans — fault plan,
    rescale schedule, hybrid knobs — are drawn, each from its own
    seed-rooted RNG stream so cell id → episode is a pure function.
    """
    from repro.faults import fault_plan_to_dict, generate_fault_plan
    from repro.testing.episode import EpisodeConfig
    from repro.testing.rng import RngTree

    _unknown(
        params,
        set(EPISODE_PARAMS) | set(EPISODE_FLAGS) | set(EPISODE_EXTRAS),
        "episode",
    )
    config = EpisodeConfig(seed=seed)
    for name in EPISODE_PARAMS:
        if name in params:
            setattr(config, name, params[name])
    config.delta_propagation = bool(params.get("delta_propagation", True))
    config.compact_tables = bool(params.get("compact_tables", False))
    config.inject = params.get("inject")

    tree = RngTree(seed)
    if params.get("faults", False):
        plan = generate_fault_plan(
            tree.rng("campaign", "faults"),
            ops=("A", "B"),
            parallelism=config.parallelism,
            servers=config.parallelism,
            max_rules=4,
            allow_crashes=False,
            horizon_s=config.until_s,
        )
        config.fault_plan = fault_plan_to_dict(plan)
    if params.get("rescale", False):
        rng = tree.rng("campaign", "rescale")
        actions = []
        for _ in range(rng.choice((1, 1, 2))):
            at_s = rng.uniform(0.05, config.until_s * 0.8)
            target = rng.choice((1, 2, 3, 4, 5))
            actions.append([round(at_s, 6), target])
        config.rescales = sorted(actions)
    if params.get("hybrid", False):
        rng = tree.rng("campaign", "hybrid")
        config.hybrid = [
            round(rng.uniform(0.3, 0.8), 6),  # hot_fraction
            rng.choice((2, 2, 3)),  # split_width
            rng.choice((2, 4, 8)),  # max_split_keys
        ]
    return config


def run_episode_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.testing.bundle import bundle_data
    from repro.testing.episode import run_episode

    config = episode_config(params, seed)
    result = run_episode(config)
    sim_s = result.sim_now_s or 1.0
    metrics = {
        "sim_tuples_per_s": result.tuples_processed / sim_s,
        "rounds_total": float(result.rounds),
        "rounds_completed": float(result.rounds_completed),
        "rounds_aborted": float(result.rounds_aborted),
        "faults_injected": float(result.faults_injected),
        "violations": float(len(result.violations)),
    }
    return CellOutcome(
        metrics=metrics,
        fingerprint=f"{result.fingerprint:#010x}",
        violations=[v.to_dict() for v in result.violations],
        bundle=bundle_data(result) if result.violations else None,
    )


def run_fig13_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.analysis.experiments import fig13

    _unknown(
        params,
        {"bandwidth_gbps", "padding", "parallelism", "quick"},
        "fig13",
    )
    rows = fig13(
        bandwidths=[float(params["bandwidth_gbps"])],
        paddings=[int(params["padding"])],
        parallelism=int(params.get("parallelism", 6)),
        quick=bool(params.get("quick", True)),
    )
    with_reconf = next(r for r in rows if r["reconfigure"])
    without = next(r for r in rows if not r["reconfigure"])
    after_with = with_reconf["mean_after_first_reconf"]
    after_without = without["mean_after_first_reconf"]
    return CellOutcome(
        metrics={
            "after_with_reconf_per_s": after_with,
            "after_without_reconf_per_s": after_without,
            "before_with_reconf_per_s": with_reconf[
                "mean_before_first_reconf"
            ],
            "reconf_gain": after_with / after_without if after_without else 0.0,
            "rounds_completed": float(with_reconf["rounds"]),
        }
    )


def run_skew_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.analysis.experiments import skew

    _unknown(
        params,
        {"exponent", "flash_share", "policy", "parallelism"},
        "skew",
    )
    rows = skew(
        exponents=[float(params["exponent"])],
        flash_shares=[float(params["flash_share"])],
        policies=[str(params["policy"])],
        parallelism=int(params.get("parallelism", 4)),
    )
    (row,) = rows
    return CellOutcome(
        metrics={
            "tuples_per_s": row["throughput"],
            "locality": row["locality"],
            "load_balance": row["load_balance"],
        }
    )


def _claim(violations: List[dict], invariant: str, detail: str) -> None:
    """Record one broken paper claim as a cell violation dict."""
    violations.append(
        {"invariant": invariant, "detail": detail, "at_s": 0.0}
    )


def run_fig10_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    """The flash-hashtag spread (bench_fig10): the same tag must peak
    in multiple locations on multiple days — the reason
    reconfiguration has to be online."""
    from repro.analysis.experiments import fig10

    _unknown(params, {"weeks", "quick"}, "fig10")
    rows = fig10(
        weeks=int(params.get("weeks", 8)),
        quick=bool(params.get("quick", True)),
    )
    by_location: Dict[str, List[tuple]] = {}
    for row in rows:
        by_location.setdefault(row["location"], []).append(
            (row["day"], row["frequency"])
        )
    peak_days = {
        max(series, key=lambda df: df[1])[0]
        for series in by_location.values()
    }
    violations: List[dict] = []
    if len(by_location) < 2:
        _claim(
            violations,
            "fig10_multi_location",
            f"flash tag peaked in {len(by_location)} location(s); "
            f"the paper's premise needs >= 2",
        )
    if len(peak_days) < 2:
        _claim(
            violations,
            "fig10_multi_day",
            f"flash tag peaked on {len(peak_days)} day(s); "
            f"the paper's premise needs >= 2",
        )
    return CellOutcome(
        metrics={
            "locations": float(len(by_location)),
            "peak_days": float(len(peak_days)),
            "peak_frequency": float(
                max(row["frequency"] for row in rows)
            ),
        },
        violations=violations,
    )


def run_fig11_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    """One routing mode of the weekly locality/balance sweep
    (bench_fig11). Cross-mode claims (online beats hash, offline
    decays) live in the baseline-tracked per-mode metrics."""
    from repro.analysis.experiments import fig11

    _unknown(
        params,
        {"mode", "weeks", "num_servers", "sketch_capacity", "quick"},
        "fig11",
    )
    mode = str(params["mode"])
    kwargs: Dict[str, Any] = {"quick": bool(params.get("quick", True))}
    for name in ("weeks", "num_servers", "sketch_capacity"):
        if name in params:
            kwargs[name] = int(params[name])
    rows = [r for r in fig11(**kwargs) if r["mode"] == mode]
    if not rows:
        raise ValueError(f"fig11 runner: unknown mode {mode!r}")
    locality = [r["locality"] for r in rows]
    balance = [r["load_balance"] for r in rows]
    return CellOutcome(
        metrics={
            "mean_locality": sum(locality) / len(locality),
            "late_locality": sum(locality[-3:]) / len(locality[-3:]),
            "mean_balance": sum(balance) / len(balance),
            "weeks": float(len(rows)),
        }
    )


def run_fig12_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    """One (edge budget, parallelism) point of locality-vs-collected-
    edges (bench_fig12). ``budget: 0`` means unlimited (YAML axis
    values must be scalars, so None is spelled 0)."""
    from repro.analysis.experiments import fig12

    _unknown(params, {"budget", "parallelism", "quick"}, "fig12")
    budget = int(params["budget"])
    parallelism = int(params.get("parallelism", 6))
    (row,) = fig12(
        edge_budgets=[budget if budget > 0 else None],
        parallelisms=[parallelism],
        quick=bool(params.get("quick", True)),
    )
    violations: List[dict] = []
    if budget > 0 and budget <= 10:
        # bench_fig12: a tiny budget cannot beat hash by much
        ceiling = 1.0 / parallelism + 0.15
        if row["locality"] >= ceiling:
            _claim(
                violations,
                "fig12_tiny_budget_close_to_hash",
                f"budget {budget} reached locality "
                f"{row['locality']:.3f} >= {ceiling:.3f}",
            )
    return CellOutcome(
        metrics={
            "locality": float(row["locality"]),
            "predicted_locality": float(row["predicted"]),
            "edges": float(row["edges"]),
        },
        violations=violations,
    )


#: scenarios the ``backend`` runner can replay on both backends
BACKEND_SCENARIOS = ("fig13", "skew", "rescale")


def _backend_topology_factory(
    scenario: str, params: Dict[str, Any], seed: int
):
    """A zero-arg factory building one *finite* topology per call
    (each backend run needs fresh operator state), plus the comparison
    strictness the scenario's routing admits."""
    parallelism = int(params.get("parallelism", 4))
    tuples_per_instance = int(params.get("tuples_per_instance", 1000))
    strict = {"exact_placements": True, "exact_received": True}

    if scenario == "fig13":
        from repro.workloads.flickr import FlickrConfig, FlickrWorkload

        workload = FlickrWorkload(FlickrConfig(seed=seed))
        padding = int(params.get("padding", 4000))
        factory = lambda: workload.topology(
            parallelism=parallelism,
            padding=padding,
            tuples_per_instance=tuples_per_instance,
        )
        return factory, strict

    if scenario == "skew":
        from repro.workloads.skew import SkewConfig, SkewWorkload

        policy = str(params.get("policy", "table"))
        config = SkewConfig(
            parallelism=parallelism,
            seed=seed,
            tuples_per_instance=tuples_per_instance,
        )
        factory = lambda: SkewWorkload(config).topology(policy)
        if policy == "hybrid":
            # d-choices picks are load-dependent: totals stay exact,
            # placements only guarantee member-set containment
            strict = {"exact_placements": False, "exact_received": False}
        return factory, strict

    raise ValueError(
        f"backend runner got unknown scenario {scenario!r}; "
        f"one of {list(BACKEND_SCENARIOS)}"
    )


def _run_backend_rescale(
    params: Dict[str, Any], seed: int, candidate: str = "vectorized"
) -> CellOutcome:
    """The rescale scenario: a real DES ``Manager.rescale`` episode,
    then the same *final decision* replayed on the candidate backend
    as scripted actions — per-key totals and final placements must
    match exactly (both equal ``owner_of`` under the final table)."""
    import random

    from repro.core import Manager, ManagerConfig
    from repro.engine import (
        CountBolt,
        TableFieldsGrouping,
        TopologyBuilder,
    )
    from repro.engine.backends import (
        BackendOptions,
        ReconfigureAction,
        run_topology,
    )
    from repro.engine.operators import IteratorSpout
    from repro.testing.equivalence import compare_backends

    spouts = int(params.get("parallelism", 3))
    tuples_per_instance = int(params.get("tuples_per_instance", 2000))
    before, after = 2, 4

    def make_topology():
        def source(ctx):
            rng = random.Random(seed * 1000003 + ctx.instance_index)
            for _ in range(tuples_per_instance):
                a = rng.randrange(12)
                yield (a, a + 100)

        builder = TopologyBuilder()
        builder.spout(
            "S", lambda: IteratorSpout(source), parallelism=spouts
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=True),
            parallelism=before,
            inputs={"S": TableFieldsGrouping(0)},
        )
        builder.bolt(
            "B",
            lambda: CountBolt(1, forward=False),
            parallelism=before,
            inputs={"A": TableFieldsGrouping(1)},
        )
        return builder.build()

    def attach_manager(deployment):
        sim = deployment.sim
        manager = Manager(deployment, ManagerConfig(period_s=None))

        def kick():
            if not manager.rescale(after, on_complete=lambda r: None):
                sim.schedule(0.01, kick)

        sim.schedule(0.02, kick)

    ref = run_topology(
        make_topology(),
        "reference",
        BackendOptions(num_servers=after, on_deployed=attach_manager),
    )
    deployment = ref.handle
    actions = [
        ReconfigureAction(
            tuples_per_instance,
            "S->A",
            deployment.executors["S"][0].table_router("S->A").table,
            after,
        ),
        ReconfigureAction(
            tuples_per_instance,
            "A->B",
            deployment.executors["A"][0].table_router("A->B").table,
            after,
        ),
    ]
    cand = run_topology(
        make_topology(),
        candidate,
        BackendOptions(num_servers=after, actions=actions),
    )
    # swap timing differs between the backends, so locality/received
    # are epoch-weighted differently; totals and placements are exact
    report = compare_backends(
        ref, cand, exact_received=False, locality_tol=1.0, balance_tol=1.0
    )
    return _backend_outcome(report, ref, cand)


def _backend_outcome(report, ref, cand) -> CellOutcome:
    speedup = (
        cand.tuples_per_s / ref.tuples_per_s if ref.tuples_per_s else 0.0
    )
    # wall-clock throughputs deliberately avoid the directed
    # ``_per_s`` suffix: absolute speed is machine noise in CI; the
    # same-machine back-to-back speedup ratio is what gets gated.
    # Metric names carry the candidate backend so a campaign sweeping
    # ``candidate:`` tracks each backend's speedup separately.
    metrics = {
        "reference_throughput": ref.tuples_per_s,
        f"{cand.backend}_throughput": cand.tuples_per_s,
        f"{cand.backend}_speedup_x": speedup,
        "locality_delta": abs(ref.locality - cand.locality),
        "equivalent": 0.0 if report.violations else 1.0,
    }
    if cand.measured:
        # measured (not modeled) run costs — informational axes
        metrics["measured_cpu_ns"] = float(cand.measured["cpu_ns_total"])
        metrics["measured_ipc_bytes"] = float(
            cand.measured["ipc_bytes_total"]
        )
    return CellOutcome(
        metrics=metrics,
        violations=[v.to_dict() for v in report.violations],
    )


def run_backend_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.engine.backends import BackendOptions, run_topology
    from repro.testing.equivalence import run_equivalence

    _unknown(
        params,
        {
            "scenario",
            "backend",
            "candidate",
            "parallelism",
            "padding",
            "policy",
            "tuples_per_instance",
            "batch_size",
        },
        "backend",
    )
    scenario = str(params.get("scenario", "fig13"))
    # "skew-hybrid" style values let a campaign sweep scenario+policy
    # on one (scalar-valued) matrix axis without redundant crossings
    if scenario.startswith("skew-"):
        params = dict(params, policy=scenario.partition("-")[2])
        scenario = "skew"
    backend = str(params.get("backend", "both"))
    candidate = str(params.get("candidate", "vectorized"))
    batch_size = int(params.get("batch_size", 2048))

    if scenario == "rescale":
        if backend != "both":
            raise ValueError(
                "backend runner: the rescale scenario always runs both "
                "backends (the DES decides, the candidate replays)"
            )
        return _run_backend_rescale(params, seed, candidate)

    factory, strict = _backend_topology_factory(scenario, params, seed)

    if backend != "both":
        result = run_topology(
            factory(), backend, BackendOptions(batch_size=batch_size)
        )
        return CellOutcome(
            metrics={
                "throughput": result.tuples_per_s,
                "locality": result.locality,
                "load_balance": max(
                    result.load_balance.values(), default=1.0
                ),
            }
        )

    report, ref, cand = run_equivalence(
        factory,
        candidate=candidate,
        candidate_options=BackendOptions(batch_size=batch_size),
        locality_tol=0.05 if not strict["exact_placements"] else 1e-9,
        balance_tol=0.15 if not strict["exact_placements"] else 1e-9,
        **strict,
    )
    return _backend_outcome(report, ref, cand)


RUNNERS: Dict[str, Callable[[Dict[str, Any], int], CellOutcome]] = {
    "episode": run_episode_cell,
    "fig10": run_fig10_cell,
    "fig11": run_fig11_cell,
    "fig12": run_fig12_cell,
    "fig13": run_fig13_cell,
    "skew": run_skew_cell,
    "backend": run_backend_cell,
}


def run_cell(runner: str, params: Dict[str, Any], seed: int) -> CellOutcome:
    """Dispatch one cell to its registered runner."""
    try:
        fn = RUNNERS[runner]
    except KeyError:
        raise ValueError(
            f"unknown runner {runner!r}; one of {sorted(RUNNERS)}"
        ) from None
    return fn(params, seed)
