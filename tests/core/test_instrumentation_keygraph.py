"""Tests for pair tracking and the bipartite key graph."""

import pytest

from repro.core import KeyGraph, PairTracker
from repro.spacesaving import ExactCounter


def test_tracker_counts_pairs_per_edge_pair():
    tracker = PairTracker("A", capacity=16)
    tracker.observe("S", "asia", "A->B", "#java")
    tracker.observe("S", "asia", "A->B", "#java")
    tracker.observe("S", "asia", "A->B", "#ruby")
    stats = tracker.collect()
    assert list(stats) == [("S->A", "A->B")]
    counts = {e.item: e.count for e in stats[("S->A", "A->B")]}
    assert counts == {("asia", "#java"): 2, ("asia", "#ruby"): 1}
    assert tracker.observed == 3


def test_tracker_capacity_validation():
    with pytest.raises(ValueError):
        PairTracker("A", capacity=0)


def test_tracker_collect_and_clear():
    tracker = PairTracker("A", capacity=16)
    tracker.observe("S", "k", "A->B", "v")
    first = tracker.collect_and_clear()
    assert first[("S->A", "A->B")][0].count == 1
    assert tracker.observed == 0
    assert tracker.collect() == {("S->A", "A->B"): []}


def test_tracker_bounded_memory():
    tracker = PairTracker("A", capacity=4)
    for i in range(100):
        tracker.observe("S", i, "A->B", i)
    stats = tracker.collect()
    assert len(stats[("S->A", "A->B")]) <= 4


def test_tracker_with_exact_counter():
    tracker = PairTracker("A", capacity=4, sketch_factory=ExactCounter)
    for i in range(100):
        tracker.observe("S", i, "A->B", i)
    stats = tracker.collect()
    assert len(stats[("S->A", "A->B")]) == 100


def test_keygraph_accumulates_and_weights_match_figure5():
    graph = KeyGraph()
    graph.add_pair("S->A", "Asia", "A->B", "#java", 3463)
    graph.add_pair("S->A", "Asia", "A->B", "#ruby", 3011)
    graph.add_pair("S->A", "Asia", "A->B", "#python", 969)
    graph.add_pair("S->A", "Oceania", "A->B", "#java", 1201)
    graph.add_pair("S->A", "Oceania", "A->B", "#ruby", 881)
    graph.add_pair("S->A", "Oceania", "A->B", "#python", 3108)
    # Vertex weights equal the sums shown in Figure 5.
    assert graph.vertex_weight("S->A", "Asia") == 7443
    assert graph.vertex_weight("S->A", "Oceania") == 5190
    assert graph.vertex_weight("A->B", "#java") == 4664
    assert graph.vertex_weight("A->B", "#ruby") == 3892
    assert graph.vertex_weight("A->B", "#python") == 4077
    assert graph.num_vertices == 5  # 2 locations + 3 hashtags
    assert graph.num_edges == 6
    assert graph.pair_weight("S->A", "Asia", "A->B", "#java") == 3463


def test_keygraph_same_key_different_streams_are_distinct():
    graph = KeyGraph()
    graph.add_pair("S->A", "x", "A->B", "x", 5)
    assert graph.num_vertices == 2
    assert graph.vertex_weight("S->A", "x") == 5
    assert graph.vertex_weight("A->B", "x") == 5


def test_keygraph_rejects_nonpositive_count():
    graph = KeyGraph()
    with pytest.raises(ValueError):
        graph.add_pair("a", 1, "b", 2, 0)


def test_keygraph_from_stats_accepts_estimates_and_tuples():
    tracker = PairTracker("A", capacity=8)
    tracker.observe("S", "k1", "A->B", "v1")
    tracker.observe("S", "k1", "A->B", "v1")
    graph = KeyGraph.from_stats(tracker.collect())
    assert graph.pair_weight("S->A", "k1", "A->B", "v1") == 2

    graph2 = KeyGraph.from_stats(
        {("S->A", "A->B"): [(("k1", "v1"), 3), (("k2", "v2"), 1)]}
    )
    assert graph2.pair_weight("S->A", "k1", "A->B", "v1") == 3
    assert graph2.num_edges == 2


def test_keygraph_top_edges():
    graph = KeyGraph()
    for i, weight in enumerate([10, 50, 30, 20]):
        graph.add_pair("in", f"k{i}", "out", f"v{i}", weight)
    truncated = graph.top_edges(2)
    assert truncated.num_edges == 2
    assert truncated.pair_weight("in", "k1", "out", "v1") == 50
    assert truncated.pair_weight("in", "k2", "out", "v2") == 30
    assert truncated.pair_weight("in", "k0", "out", "v0") == 0
    with pytest.raises(ValueError):
        graph.top_edges(-1)


def test_keygraph_to_partition_graph_roundtrip():
    graph = KeyGraph()
    graph.add_pair("in", "a", "out", "b", 7)
    graph.add_pair("in", "a", "out", "c", 3)
    pgraph, vertices = graph.to_partition_graph()
    assert pgraph.num_vertices == 3
    assert pgraph.num_edges == 2
    index = {vertex: i for i, vertex in enumerate(vertices)}
    assert pgraph.vertex_weight(index[("in", "a")]) == 10
    assert (
        pgraph.edge_weight(index[("in", "a")], index[("out", "b")]) == 7
    )


def test_keygraph_streams_listing():
    graph = KeyGraph()
    graph.add_pair("S->A", 1, "A->B", 2, 1)
    assert graph.streams() == ["A->B", "S->A"]
