"""Observability overhead micro-benchmark.

The observability layer promises to be opt-in: with the default null
sink the instrumented code paths cost (nearly) nothing, because hot
paths only increment plain integers that were already being counted or
check a single ``sink.enabled`` flag. This benchmark verifies the
promise: the same reconfiguring run is timed bare, with telemetry
attached on the null sink, and (informationally) with a live memory
sink; the null-sink overhead must stay under the 3 % budget stated in
DESIGN.md §8.

Timing uses process CPU time, not the wall clock: the budget is a
claim about *work done per tuple*, and CPU time is immune to the
other-process interference that dominates wall-clock jitter on small
shared machines. The gate compares the *median of per-repeat ratios*
— each repeat runs the modes back-to-back so both sides of a ratio
see the same machine state, and the median discards the odd repeat
that caught a frequency change or a page-cache miss. (A quotient of
two independent best-of-N minima, the previous scheme, flapped once
the engine fast path shrank the run enough for jitter to reach
several percent of it.) The table lands in
``results/observability_overhead.txt``.
"""

import random
import time

from helpers import save_table
from repro.analysis.report import format_table
from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.observability import MemorySink, NULL_SINK, attach_telemetry

N = 3
PER_SPOUT = 20000
REPEATS = 9  # odd: the gate takes a median of per-round ratios
BUDGET = 0.03  # the documented null-sink overhead ceiling


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _run_once(mode):
    sim = Simulator()
    cluster = Cluster(sim, N)
    deployment = deploy(sim, cluster, _build())
    manager = Manager(deployment, ManagerConfig(period_s=0.1))
    telemetry = None
    if mode == "null-sink":
        telemetry = attach_telemetry(
            deployment, manager=manager, sink=NULL_SINK
        )
    elif mode == "memory-sink":
        telemetry = attach_telemetry(
            deployment,
            manager=manager,
            sink=MemorySink(),
            snapshot_interval_s=0.02,
        )
    manager.start()
    deployment.start()
    start = time.process_time()
    sim.run(until=0.5)
    manager.stop()
    sim.run()
    elapsed = time.process_time() - start
    if telemetry is not None:
        telemetry.flush()
    tuples = deployment.metrics.processed_total("B")
    return elapsed, tuples


def _median(xs):
    s = sorted(xs)
    return s[len(s) // 2]


def measure_overhead(modes=("bare", "null-sink", "memory-sink"),
                     repeats=REPEATS):
    """Measure instrumentation overhead vs the bare engine.

    Runs every mode once unrecorded (warmup), then ``repeats`` rounds
    with the modes back-to-back inside each round. The overhead of a
    mode is the median over rounds of that round's CPU-time ratio to
    its own bare run, minus one — see the module docstring for why
    ratios are paired per round and reduced by median.

    Returns ``(overheads, times, tuples)``: overhead fraction per
    non-bare mode, median CPU seconds per mode, and the processed
    tuple count per mode (for the instrumentation-must-not-change-the-
    computation check).
    """
    assert modes[0] == "bare" and repeats % 2 == 1
    for mode in modes:
        _run_once(mode)  # warmup: levels allocator/interpreter state
    samples = {mode: [] for mode in modes}
    counts = {}
    for _ in range(repeats):
        for mode in modes:
            elapsed, tuples = _run_once(mode)
            samples[mode].append(elapsed)
            counts[mode] = tuples
    bare = samples["bare"]
    overheads = {
        mode: _median([m / b for m, b in zip(samples[mode], bare)]) - 1.0
        for mode in modes[1:]
    }
    times = {mode: _median(xs) for mode, xs in samples.items()}
    return overheads, times, counts


def test_null_sink_overhead_within_budget():
    overheads, times, counts = measure_overhead()

    assert counts["null-sink"] == counts["bare"], (
        "instrumentation changed the computation"
    )

    overhead_null = overheads["null-sink"]
    overhead_live = overheads["memory-sink"]
    rows = [
        {
            "mode": "bare (seed behaviour)",
            "median_cpu_s": times["bare"],
            "tuples": counts["bare"],
            "overhead": "-",
        },
        {
            "mode": "telemetry, null sink (default)",
            "median_cpu_s": times["null-sink"],
            "tuples": counts["null-sink"],
            "overhead": f"{overhead_null:+.1%}",
        },
        {
            "mode": "telemetry, live memory sink",
            "median_cpu_s": times["memory-sink"],
            "tuples": counts["memory-sink"],
            "overhead": f"{overhead_live:+.1%}",
        },
    ]
    table = format_table(
        rows,
        columns=["mode", "median_cpu_s", "tuples", "overhead"],
        title=(
            f"Observability overhead (median of {REPEATS} paired "
            f"rounds, budget {BUDGET:.0%} for the null sink)"
        ),
    )
    print()
    print(table)
    save_table("observability_overhead", table)

    assert overhead_null < BUDGET, (
        f"null-sink overhead {overhead_null:.1%} exceeds "
        f"the {BUDGET:.0%} budget"
    )
