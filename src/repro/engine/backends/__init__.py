"""Pluggable execution backends behind the PhysicalOperator seam.

A *backend* takes the same :class:`~repro.engine.topology.Topology` a
:class:`~repro.engine.topology.TopologyBuilder` produces and runs it to
quiescence, returning a :class:`BackendResult` with identical shape
regardless of how the tuples actually moved:

``reference``
    The discrete-event simulator (:mod:`repro.engine.runner`),
    unchanged — it is the correctness oracle, and running it through
    this adapter perturbs nothing (same-seed event fingerprints stay
    byte-identical with the fast path off).

``vectorized``
    The numpy batch fast path (:mod:`repro.engine.backends.vectorized`,
    DESIGN.md §15): tuple batches packed into arrays, routing resolved
    per batch.

``multiprocess``
    Real OS processes — one worker per simulated server — connected by
    real ``multiprocessing`` queues
    (:mod:`repro.engine.backends.multiprocess`, DESIGN.md §16).
    Per-server CPU time and inter-process bytes are *measured*, not
    modeled, and land in :attr:`BackendResult.measured`.

Cross-backend equivalence — same per-key totals, same routing
decisions, locality/balance within tolerance — is the invariant class
that gates the fast path (:mod:`repro.testing.equivalence`).

Equivalence runs need *finite* streams: build topologies with a
``tuples_per_instance`` bound so both backends drain the identical
input set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.costs import DEFAULT_COSTS, CostModel
from repro.engine.topology import Topology
from repro.errors import DeploymentError


@dataclass
class ReconfigureAction:
    """One scripted reconfiguration of a vectorized run.

    Applied at the first batch boundary where the total number of
    spout-emitted tuples reaches ``at_tuples``: the named stream's
    routing table is swapped (and, when ``parallelism`` is set, the
    destination tier is rescaled to that width), then keyed state
    migrates to each key's new owner — the same owner math the DES
    rescale protocol settles on (``repro.core.elasticity.owner_of``).
    """

    at_tuples: int
    stream: str
    table: Any = None
    parallelism: Optional[int] = None


@dataclass
class BackendOptions:
    """Execution parameters shared by every backend."""

    #: servers in the (modeled) cluster; None = widest op parallelism
    num_servers: Optional[int] = None
    bandwidth_gbps: Optional[float] = 1.0
    latency_s: float = 50.0e-6
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    #: reference only: acker credit window
    max_pending: int = 256
    #: reference only: record the simulator event fingerprint
    fingerprint: bool = False
    #: reference only: hook called with the Deployment before start
    #: (attach managers — the rescale equivalence episode uses this)
    on_deployed: Optional[Callable] = None
    #: vectorized/multiprocess: tuples per micro-batch
    batch_size: int = 2048
    #: vectorized/multiprocess: cap on tuples pulled per spout instance
    #: (bounds infinite sources; finite sources may end earlier)
    max_tuples_per_instance: Optional[int] = None
    #: vectorized/multiprocess: scripted mid-run reconfigurations
    actions: List[ReconfigureAction] = field(default_factory=list)
    #: multiprocess only: wall-clock budget for the whole run; on
    #: expiry every worker is torn down and a structured error raised
    mp_timeout_s: float = 120.0
    #: multiprocess only: capacity (messages) of each worker's inbound
    #: queue — small values exercise the backpressure path
    mp_queue_maxsize: int = 64
    #: multiprocess only: test-only fault injection, e.g.
    #: ``{"kind": "crash", "server": 1, "after_tuples": 50}`` or
    #: ``{"kind": "hang", "server": 0, "after_tuples": 50}``
    mp_fault: Optional[Dict[str, Any]] = None


@dataclass
class BackendResult:
    """What a backend run produced — the cross-backend contract.

    ``per_key_totals`` and ``key_instances`` describe keyed operator
    state at quiescence: the per-key count summed over instances, and
    the sorted tuple of instances holding state for the key (a single
    instance under deterministic routing; several under split/PKG).
    """

    backend: str
    wall_s: float
    #: modeled seconds: DES clock, or the busiest server's busy time
    sim_s: float
    #: spout-emitted tuples
    tuples_emitted: int
    #: per-operator processed-tuple counts
    processed: Dict[str, int]
    #: total processed across operators / wall seconds (the
    #: bench_engine convention for engine throughput)
    tuples_per_s: float
    locality: float
    stream_locality: Dict[str, float]
    load_balance: Dict[str, float]
    received: Dict[str, List[int]]
    per_key_totals: Dict[str, Dict[Any, int]]
    key_instances: Dict[str, Dict[Any, Tuple[int, ...]]]
    op_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fingerprint: Optional[int] = None
    #: backend-specific escape hatch (Deployment / compiled plan)
    handle: Any = None
    #: *measured* (not modeled) costs, populated by backends that run
    #: on real hardware resources — the multiprocess backend reports
    #: ``{"per_server": {server: {"cpu_ns", "ipc_tx_bytes",
    #: "ipc_rx_bytes", "ipc_tx_msgs", "ipc_rx_msgs"}},
    #: "ipc_bytes_total", "cpu_ns_total"}``. Empty for backends whose
    #: costs are modeled (reference DES, vectorized).
    measured: Dict[str, Any] = field(default_factory=dict)


_BACKENDS: Dict[str, Callable[[Topology, BackendOptions], BackendResult]] = {}


def register_backend(
    name: str, runner: Callable[[Topology, BackendOptions], BackendResult]
) -> None:
    """Register ``runner`` under ``name`` (later wins, like RUNNERS)."""
    _BACKENDS[name] = runner


def available_backends() -> List[str]:
    return sorted(_BACKENDS)


def get_backend(name: str):
    try:
        return _BACKENDS[name]
    except KeyError:
        raise DeploymentError(
            f"unknown backend {name!r}; one of {available_backends()}"
        ) from None


def run_topology(
    topology: Topology,
    backend: str = "reference",
    options: Optional[BackendOptions] = None,
) -> BackendResult:
    """Run ``topology`` to quiescence on the named backend."""
    return get_backend(backend)(topology, options or BackendOptions())


def _default_servers(topology: Topology, options: BackendOptions) -> int:
    if options.num_servers is not None:
        return options.num_servers
    return max(op.parallelism for op in topology.operators.values())


from repro.engine.backends.reference import run_reference  # noqa: E402
from repro.engine.backends.vectorized import run_vectorized  # noqa: E402
from repro.engine.backends.multiprocess import (  # noqa: E402
    MultiprocessBackendError,
    run_multiprocess,
)

register_backend("reference", run_reference)
register_backend("vectorized", run_vectorized)
register_backend("multiprocess", run_multiprocess)

__all__ = [
    "BackendOptions",
    "BackendResult",
    "MultiprocessBackendError",
    "ReconfigureAction",
    "available_backends",
    "get_backend",
    "register_backend",
    "run_topology",
    "run_reference",
    "run_vectorized",
    "run_multiprocess",
]
