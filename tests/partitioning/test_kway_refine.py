"""Tests for the k-way refinement pass."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitioningError
from repro.partitioning import Graph, balance, edge_cut, partition
from repro.partitioning.kway_refine import refine_kway


def _clustered_graph(num_clusters, size, rng):
    n = num_clusters * size
    edges = []
    for cluster in range(num_clusters):
        members = list(range(cluster * size, (cluster + 1) * size))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.append((u, v, 10.0))
    for _ in range(num_clusters * 3):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, 1.0))
    return Graph.from_edges(n, edges)


def test_validation():
    graph = Graph(3)
    with pytest.raises(PartitioningError):
        refine_kway(graph, [0, 0], 2)
    with pytest.raises(PartitioningError):
        refine_kway(graph, [0, 0, 5], 2)


def test_trivial_cases():
    assert refine_kway(Graph(0), [], 2) == 0
    graph = Graph(4)
    parts = [0, 1, 0, 1]
    assert refine_kway(graph, parts, 1) == 0


def test_repairs_perturbed_partition():
    rng = random.Random(0)
    graph = _clustered_graph(3, 8, rng)
    parts = [v // 8 for v in range(24)]
    optimal_cut = edge_cut(graph, parts)
    # Swap two vertices across clusters: cut jumps, balance intact.
    parts[0], parts[8] = parts[8], parts[0]
    assert edge_cut(graph, parts) > optimal_cut
    moved = refine_kway(graph, parts, 3)
    assert moved >= 2
    assert edge_cut(graph, parts) == optimal_cut


def test_never_worsens_cut_or_balance():
    rng = random.Random(1)
    graph = _clustered_graph(4, 6, rng)
    parts = [rng.randrange(4) for _ in range(24)]
    cut_before = edge_cut(graph, parts)
    refine_kway(graph, parts, 4, imbalance=1.2)
    assert edge_cut(graph, parts) <= cut_before


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_refinement_respects_balance_cap(seed):
    rng = random.Random(seed)
    n = 24
    edges = []
    for _ in range(60):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, float(rng.randint(1, 9))))
    graph = Graph.from_edges(n, edges)
    parts = partition(graph, 3, seed=seed, kway_refinement=False)
    bal_before = balance(graph, parts, 3)
    refine_kway(graph, parts, 3, imbalance=1.1)
    bal_after = balance(graph, parts, 3)
    # Refinement may not push a balanced partition past the cap
    # (granularity slack: one vertex).
    cap = max(1.1, bal_before) + 3.0 / (n / 3)
    assert bal_after <= cap


def test_partition_with_refinement_not_worse():
    rng = random.Random(5)
    graph = _clustered_graph(4, 10, rng)
    refined = partition(graph, 4, seed=3, kway_refinement=True)
    unrefined = partition(graph, 4, seed=3, kway_refinement=False)
    assert edge_cut(graph, refined) <= edge_cut(graph, unrefined) + 1e-9
