"""The seeded RNG tree: one root seed, many independent streams.

Deterministic simulation testing requires that *every* random decision
in an episode — workload tuples, fault plans, partitioner tie-breaks —
derives from the single episode seed, so that re-running the seed
replays the identical event sequence. :class:`RngTree` provides that
discipline: children are derived by path, and two different paths
yield statistically independent, process-stable streams.

Derivation goes through :func:`repro.engine.grouping.stable_hash`
(crc32 + splitmix64 over the repr), never the builtin ``hash`` — which
is salted per process for strings and would silently break replay
across interpreter invocations.
"""

from __future__ import annotations

import random

from repro.engine.grouping import stable_hash


class RngTree:
    """A node in the seed-derivation tree."""

    __slots__ = ("seed",)

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def derive(self, *path) -> "RngTree":
        """The child node at ``path`` (any repr-stable values)."""
        return RngTree(stable_hash(repr(path), self.seed))

    def rng(self, *path) -> random.Random:
        """A fresh ``random.Random`` for the stream at ``path``.

        Each call returns an independent generator in the same state,
        so callers own their stream's consumption order.
        """
        return random.Random(self.derive(*path).seed)

    def __repr__(self) -> str:
        return f"RngTree(seed={self.seed})"
