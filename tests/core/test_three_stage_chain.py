"""Joint optimization of a three-stage stateful chain.

The paper evaluates a two-hop chain, but its conclusion claims the
technique extends to longer DAGs: pairs observed at different
operators share the middle key namespace, so one joint partition
optimizes every hop at once. This test runs S -> A -> B -> C with
fields grouping on all three hops and verifies that the manager makes
*both* downstream hops local simultaneously, with exact state.
"""

import random
from collections import Counter

import pytest

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout

N = 3
PER_SPOUT = 20000


def _source(ctx):
    """Correlated triples: key a always travels with a+100 and a+200."""
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = rng.randrange(2 * N)
        yield (a, a + 100, a + 200)


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A", lambda: CountBolt(0, forward=True), parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B", lambda: CountBolt(1, forward=True), parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    builder.bolt(
        "C", lambda: CountBolt(2, forward=False), parallelism=N,
        inputs={"B": TableFieldsGrouping(2)},
    )
    return builder.build()


@pytest.fixture(scope="module")
def finished_run():
    sim = Simulator()
    cluster = Cluster(sim, N)
    deployment = deploy(sim, cluster, _build())
    manager = Manager(deployment, ManagerConfig(period_s=0.08))
    manager.start()
    deployment.start()
    sim.run(until=0.12)
    snapshot = deployment.metrics.snapshot()
    sim.run(until=0.5)
    post = deployment.metrics.snapshot()
    manager.stop()
    sim.run()
    return deployment, manager, snapshot, post


def test_both_instrumented_operators_collect_pairs(finished_run):
    deployment, manager, _, _ = finished_run
    assert deployment.executor("A", 0).instrumentation is not None
    assert deployment.executor("B", 0).instrumentation is not None
    # C has no table-routed output: not instrumented.
    assert deployment.executor("C", 0).instrumentation is None


def test_joint_graph_spans_three_namespaces(finished_run):
    _, manager, _, _ = finished_run
    plans = [r.plan for r in manager.completed_rounds if r.plan]
    assert plans
    assert set(plans[0].tables) == {"S->A", "A->B", "B->C"}


def test_all_downstream_hops_become_local(finished_run):
    deployment, _, snapshot, post = finished_run
    for stream in ("A->B", "B->C"):
        delta = post.streams[stream].minus(snapshot.streams[stream])
        assert delta.locality() > 0.95, stream


def test_chain_state_is_exact_after_migrations(finished_run):
    deployment, _, _, _ = finished_run
    truth = {"A": Counter(), "B": Counter(), "C": Counter()}
    for i in range(N):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            a = rng.randrange(2 * N)
            truth["A"][a] += 1
            truth["B"][a + 100] += 1
            truth["C"][a + 200] += 1
    for op in ("A", "B", "C"):
        measured = Counter()
        for executor in deployment.instances(op):
            for key, count in executor.operator.state.items():
                measured[key] += count
        assert measured == truth[op], op
    assert deployment.metrics.processed_total("C") == N * PER_SPOUT
    assert deployment.acker.in_flight == 0


def test_correlated_keys_share_a_server(finished_run):
    _, manager, _, _ = finished_run
    plan = [r.plan for r in manager.completed_rounds if r.plan][-1]
    assignment = plan.assignment
    for a in range(2 * N):
        servers = {
            assignment.server_of("S->A", a),
            assignment.server_of("A->B", a + 100),
            assignment.server_of("B->C", a + 200),
        }
        servers.discard(None)
        assert len(servers) == 1, f"triple {a} split across {servers}"
