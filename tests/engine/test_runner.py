"""Integration tests: deploy and run full topologies."""

import pytest

from repro.engine import (
    Cluster,
    CountBolt,
    CustomGrouping,
    FieldsGrouping,
    LocalOrShuffleGrouping,
    RunConfig,
    ShuffleGrouping,
    Simulator,
    TopologyBuilder,
    deploy,
    run,
)
from repro.engine.operators import IteratorSpout, PassThroughBolt
from repro.errors import DeploymentError


def _counting_topology(n, keys=16, tuples_per_instance=None):
    """S -> A (fields on f0) -> B (fields on f1)."""

    def source(ctx):
        import random

        rng = random.Random(100 + ctx.instance_index)
        count = 0
        while tuples_per_instance is None or count < tuples_per_instance:
            yield (rng.randrange(keys), rng.randrange(keys))
            count += 1

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=n)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=n,
        inputs={"S": FieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=n,
        inputs={"A": FieldsGrouping(1)},
    )
    return builder.build()


def test_run_measures_throughput():
    result = run(
        _counting_topology(1),
        RunConfig(duration_s=0.2, warmup_s=0.05, num_servers=1),
    )
    # Single server: CPU-bound at 1/bolt_service = ~111 Ktuples/s.
    assert result.throughput == pytest.approx(111_000, rel=0.05)
    assert result.locality == 1.0
    assert result.measured_s == pytest.approx(0.15)


def test_finite_source_processes_everything_exactly_once():
    per_instance = 500
    topology = _counting_topology(2, tuples_per_instance=per_instance)
    sim = Simulator()
    cluster = Cluster(sim, 2)
    deployment = deploy(sim, cluster, topology)
    deployment.start()
    sim.run()
    metrics = deployment.metrics
    total = 2 * per_instance
    assert metrics.processed_total("A") == total
    assert metrics.processed_total("B") == total
    # Conservation: every spout tuple was acked.
    assert deployment.acker.in_flight == 0
    assert deployment.acker.completed == total
    # Ground truth: counts across B instances sum to the tuple count.
    b_total = sum(
        sum(e.operator.state.values()) for e in deployment.instances("B")
    )
    assert b_total == total


def test_fields_grouping_consistency():
    """All tuples with one key land on a single instance."""
    topology = _counting_topology(3, keys=30, tuples_per_instance=400)
    sim = Simulator()
    cluster = Cluster(sim, 3)
    deployment = deploy(sim, cluster, topology)
    deployment.start()
    sim.run()
    seen = {}
    for executor in deployment.instances("B"):
        for key in executor.operator.state:
            assert key not in seen, f"key {key} split across instances"
            seen[key] = executor.instance


def test_hash_locality_is_one_over_n():
    result = run(
        _counting_topology(4, keys=1000),
        RunConfig(duration_s=0.25, warmup_s=0.05, num_servers=4),
    )
    assert result.stream_locality["A->B"] == pytest.approx(0.25, abs=0.06)


def test_local_or_shuffle_is_fully_local():
    def source(ctx):
        while True:
            yield ("x",)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=3)
    builder.bolt(
        "A",
        PassThroughBolt,
        parallelism=3,
        inputs={"S": LocalOrShuffleGrouping()},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(0, forward=False),
        parallelism=3,
        inputs={"A": LocalOrShuffleGrouping()},
    )
    result = run(
        builder.build(),
        RunConfig(duration_s=0.1, warmup_s=0.02, num_servers=3),
    )
    assert result.locality == 1.0


def test_shuffle_spreads_evenly():
    def source(ctx):
        while True:
            yield ("x",)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=2)
    builder.bolt(
        "B",
        lambda: CountBolt(0, forward=False),
        parallelism=4,
        inputs={"S": ShuffleGrouping()},
    )
    result = run(
        builder.build(),
        RunConfig(duration_s=0.1, warmup_s=0.02, num_servers=4),
    )
    assert result.load_balance["B"] == pytest.approx(1.0, abs=0.02)


def test_worst_case_routing_hurts_throughput():
    """CustomGrouping sending everything off-server is slower than
    perfect locality (the Section 4.2 worst-case policy)."""

    def source(ctx):
        i = ctx.instance_index
        while True:
            yield (i, i)

    def build(route_fn):
        builder = TopologyBuilder()
        builder.spout("S", lambda: IteratorSpout(source), parallelism=3)
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=True),
            parallelism=3,
            inputs={"S": CustomGrouping(lambda v, c: v[0])},
        )
        builder.bolt(
            "B",
            lambda: CountBolt(1, forward=False),
            parallelism=3,
            inputs={"A": CustomGrouping(route_fn)},
        )
        return builder.build()

    config = RunConfig(duration_s=0.15, warmup_s=0.05, num_servers=3)
    local = run(build(lambda v, c: v[1]), config)
    worst = run(
        build(lambda v, c: (v[1] + 1) % len(c.dst_placements)), config
    )
    assert local.locality == 1.0
    assert worst.stream_locality["A->B"] == 0.0
    assert worst.throughput < local.throughput


def test_bad_placement_rejected():
    sim = Simulator()
    cluster = Cluster(sim, 2)
    topology = _counting_topology(2)
    with pytest.raises(DeploymentError):
        deploy(sim, cluster, topology, placement=lambda op, i, p: 5)


def test_spout_factory_type_checked():
    builder = TopologyBuilder()
    builder.spout("S", PassThroughBolt)  # wrong type on purpose
    builder.bolt(
        "B",
        lambda: CountBolt(0, forward=False),
        inputs={"S": FieldsGrouping(0)},
    )
    sim = Simulator()
    cluster = Cluster(sim, 1)
    with pytest.raises(DeploymentError):
        deploy(sim, cluster, builder.build())


def test_duration_must_exceed_warmup():
    with pytest.raises(DeploymentError):
        run(_counting_topology(1), RunConfig(duration_s=1.0, warmup_s=1.0))


def test_sampler_produces_series():
    result = run(
        _counting_topology(1),
        RunConfig(
            duration_s=0.2,
            warmup_s=0.05,
            num_servers=1,
            sample_interval_s=0.05,
        ),
    )
    assert len(result.samples) >= 3
    times = [t for t, _ in result.samples]
    assert times == sorted(times)
    # Steady state: later samples near the measured throughput.
    assert result.samples[-1][1] == pytest.approx(
        result.throughput, rel=0.15
    )


def test_bandwidth_throttling_reduces_throughput():
    fast = run(
        _counting_topology(3, keys=500),
        RunConfig(
            duration_s=0.15, warmup_s=0.05, num_servers=3,
            bandwidth_gbps=10.0,
        ),
    )
    slow = run(
        _counting_topology(3, keys=500),
        RunConfig(
            duration_s=0.15, warmup_s=0.05, num_servers=3,
            bandwidth_gbps=0.05,
        ),
    )
    assert slow.throughput < fast.throughput


def test_max_pending_limits_in_flight():
    topology = _counting_topology(1)
    sim = Simulator()
    cluster = Cluster(sim, 1)
    deployment = deploy(sim, cluster, topology, max_pending=8)
    deployment.start()
    sim.run(until=0.05)
    assert deployment.acker.in_flight <= 8
    for spout in deployment.spout_executors():
        assert spout.pending <= 8
