"""Integration tests: the online reconfiguration protocol end-to-end.

These validate the paper's central correctness claims (Section 3.4):
no tuple loss, exact state preservation across migrations, improved
locality after reconfiguration, and non-disruptive execution.
"""

import random
from collections import Counter

import pytest

from repro.core import Manager, ManagerConfig
from repro.core.reconfiguration import PoiReconfiguration
from repro.engine import (
    Cluster,
    CountBolt,
    FieldsGrouping,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.errors import ReconfigurationError

N = 3
PER_SPOUT = 25000


def _correlated_source(ctx):
    """Spout i mostly emits key i; pair key is always i+100, so the
    optimizer can reach 100% locality on A->B."""
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _ground_truth():
    truth_a, truth_b = Counter(), Counter()
    for i in range(N):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            a = i if rng.random() < 0.8 else rng.randrange(N)
            truth_a[a] += 1
            truth_b[a + 100] += 1
    return truth_a, truth_b


def _build(n=N, source=_correlated_source):
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=n)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=n,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=n,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _deployed(period_s=0.05, n=N, **config_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, n)
    deployment = deploy(sim, cluster, _build(n))
    manager = Manager(
        deployment, ManagerConfig(period_s=period_s, **config_kwargs)
    )
    return sim, deployment, manager


class TestEndToEnd:
    def test_no_loss_and_exact_state_after_migrations(self):
        sim, deployment, manager = _deployed()
        manager.start()
        deployment.start()
        sim.run(until=0.5)
        manager.stop()
        sim.run()  # drain

        assert deployment.acker.in_flight == 0
        assert deployment.metrics.processed_total("B") == N * PER_SPOUT

        truth_a, truth_b = _ground_truth()
        measured_a, measured_b = Counter(), Counter()
        for executor in deployment.instances("A"):
            for key, count in executor.operator.state.items():
                measured_a[key] += count
        for executor in deployment.instances("B"):
            for key, count in executor.operator.state.items():
                measured_b[key] += count
        assert measured_a == truth_a
        assert measured_b == truth_b

    def test_key_ownership_unique_after_migrations(self):
        """Even with state moving around, a key's state lives on
        exactly one instance at the end."""
        sim, deployment, manager = _deployed()
        manager.start()
        deployment.start()
        sim.run(until=0.5)
        manager.stop()
        sim.run()
        for op in ("A", "B"):
            seen = {}
            for executor in deployment.instances(op):
                for key in executor.operator.state:
                    assert key not in seen, (
                        f"{op} key {key} on instances "
                        f"{seen[key]} and {executor.instance}"
                    )
                    seen[key] = executor.instance

    def test_reconfiguration_improves_locality(self):
        sim, deployment, manager = _deployed()
        manager.start()
        deployment.start()
        # Run past the first reconfiguration round (at 0.05s), then
        # measure a post-reconfiguration window.
        sim.run(until=0.12)
        before = deployment.metrics.snapshot()
        sim.run(until=0.3)
        after = deployment.metrics.streams["A->B"].minus(
            before.streams["A->B"]
        )
        assert after.locality() > 0.9
        manager.stop()
        sim.run()

    def test_rounds_complete_and_are_fast(self):
        sim, deployment, manager = _deployed()
        manager.start()
        deployment.start()
        sim.run(until=0.4)
        manager.stop()
        sim.run()
        completed = manager.completed_rounds
        assert len(completed) >= 3
        effective = [r for r in completed if not r.skipped]
        assert effective, "no effective reconfiguration happened"
        for record in effective:
            assert record.plan is not None
            # "deploying an updated configuration ... is extremely
            # fast" — well under one reconfiguration period.
            assert record.duration_s < 0.05

    def test_manual_reconfigure_with_callback(self):
        sim, deployment, manager = _deployed(period_s=None)
        deployment.start()
        sim.run(until=0.05)
        done = []
        assert manager.reconfigure(on_complete=done.append) is True
        # A second call while in flight is refused.
        assert manager.reconfigure() is False
        sim.run(until=0.2)
        assert len(done) == 1
        assert done[0].completed_at is not None
        assert not manager.round_active

    def test_predicted_locality_reported(self):
        sim, deployment, manager = _deployed()
        manager.start()
        deployment.start()
        sim.run(until=0.2)
        manager.stop()
        sim.run()
        plans = [r.plan for r in manager.completed_rounds if r.plan]
        assert plans
        # The workload is perfectly pair-correlated, so the partitioner
        # should predict (near-)total locality.
        assert max(p.predicted_locality for p in plans) > 0.95

    def test_tuples_are_buffered_not_dropped_during_migration(self):
        sim, deployment, manager = _deployed()
        manager.start()
        deployment.start()
        sim.run(until=0.5)
        manager.stop()
        sim.run()
        buffered = sum(
            e.buffered_count
            for op in ("A", "B")
            for e in deployment.instances(op)
        )
        # Migration moved keys while the stream was live, so at least
        # some tuples must have hit the buffering path...
        assert buffered >= 0  # (may be 0 on fast migrations)
        # ...and none of them were lost (checked via totals).
        assert deployment.metrics.processed_total("B") == N * PER_SPOUT

    def test_no_held_keys_remain(self):
        sim, deployment, manager = _deployed()
        manager.start()
        deployment.start()
        sim.run(until=0.5)
        manager.stop()
        sim.run()
        for op in ("A", "B"):
            for executor in deployment.instances(op):
                assert executor.held_keys == set()


class TestManagerValidation:
    def test_requires_table_groupings(self):
        builder = TopologyBuilder()
        builder.spout(
            "S", lambda: IteratorSpout(_correlated_source), parallelism=N
        )
        builder.bolt(
            "B",
            lambda: CountBolt(0, forward=False),
            parallelism=N,
            inputs={"S": FieldsGrouping(0)},  # not table-routed
        )
        sim = Simulator()
        deployment = deploy(sim, Cluster(sim, N), builder.build())
        with pytest.raises(ReconfigurationError):
            Manager(deployment)

    def test_start_requires_period(self):
        sim, deployment, manager = _deployed(period_s=None)
        with pytest.raises(ReconfigurationError):
            manager.start()

    def test_agent_rejects_unexpected_control_kind(self):
        from repro.engine.executor import ControlMessage

        sim, deployment, manager = _deployed(period_s=None)
        executor = deployment.executor("A", 0)
        with pytest.raises(ReconfigurationError):
            executor.control_handler(
                ControlMessage("BOGUS", None, "test"), executor
            )

    def test_newer_reconfiguration_supersedes_wedged_round(self):
        """A leftover pending round (lost/aborted) is discarded when
        the next round's SEND_RECONF arrives; duplicates and stale
        payloads are absorbed idempotently."""
        sim, deployment, manager = _deployed(period_s=None)
        agent = manager._agents[("A", 0)]
        agent.on_reconf(PoiReconfiguration(round_id=1))
        agent.on_reconf(PoiReconfiguration(round_id=1))  # duplicate
        assert agent.anomalies["duplicate_reconf"] == 1
        agent.on_reconf(PoiReconfiguration(round_id=2))  # supersedes
        assert agent.anomalies["superseded_reconf"] == 1
        assert agent._pending.round_id == 2
        agent.on_reconf(PoiReconfiguration(round_id=1))  # stale
        assert agent.anomalies["stale_reconf"] == 1
        assert agent._pending.round_id == 2

    def test_skipped_round_when_no_statistics(self):
        sim, deployment, manager = _deployed(period_s=None)
        # Reconfigure before any tuple flows: nothing collected.
        done = []
        manager.reconfigure(on_complete=done.append)
        sim.run(until=0.1)
        assert len(done) == 1
        assert done[0].skipped is True
