"""Tests for routing tables and their diffing."""

import pytest

from repro.core import RoutingTable


def test_empty_table():
    table = RoutingTable.empty()
    assert len(table) == 0
    assert table.lookup("x") is None
    assert "x" not in table


def test_lookup_and_contains():
    table = RoutingTable({"asia": 2, "europe": 0})
    assert table.lookup("asia") == 2
    assert table.lookup("europe") == 0
    assert table.lookup("africa") is None
    assert "asia" in table
    assert len(table) == 2
    assert dict(table.items()) == {"asia": 2, "europe": 0}
    assert set(table.keys()) == {"asia", "europe"}


def test_as_dict_is_a_copy():
    table = RoutingTable({"a": 1})
    snapshot = table.as_dict()
    snapshot["a"] = 9
    assert table.lookup("a") == 1


def test_equality():
    assert RoutingTable({"a": 1}) == RoutingTable({"a": 1})
    assert RoutingTable({"a": 1}) != RoutingTable({"a": 2})
    assert RoutingTable() == RoutingTable.empty()


def test_moved_keys_between_tables():
    old = RoutingTable({"a": 0, "b": 1, "c": 2})
    new = RoutingTable({"a": 0, "b": 2, "d": 1})
    fallback = lambda key: 0  # noqa: E731
    moved = old.moved_keys(new, fallback)
    # "a" stays; "b" moves 1->2; "c" leaves the table (falls back to 0);
    # "d" enters the table (was at fallback 0, now 1).
    assert moved == {"b": (1, 2), "c": (2, 0), "d": (0, 1)}


def test_moved_keys_respects_fallback_identity():
    """A key entering the table at its own hash owner does not move."""
    old = RoutingTable()
    new = RoutingTable({"k": 3})
    moved = old.moved_keys(new, lambda key: 3)
    assert moved == {}


def test_moved_keys_empty_tables():
    assert RoutingTable().moved_keys(RoutingTable(), lambda k: 0) == {}


def test_moved_keys_fallback_called_lazily_at_most_once_per_key():
    """The hash fallback is the expensive resolver; it must run at
    most once per key and never for a key both tables contain."""
    calls = {}

    def fallback(key):
        calls[key] = calls.get(key, 0) + 1
        return 0

    old = RoutingTable({"both": 1, "old_only": 2, "stays": 1})
    new = RoutingTable({"both": 2, "new_only": 1, "stays": 1})
    moved = old.moved_keys(new, fallback)
    assert moved == {
        "both": (1, 2),
        "old_only": (2, 0),
        "new_only": (0, 1),
    }
    assert calls == {"old_only": 1, "new_only": 1}


# ----------------------------------------------------------------------
# Split sets (hybrid routing payload)
# ----------------------------------------------------------------------


def test_split_set_accessors():
    table = RoutingTable({"a": 1}, {"hot": (0, 2)})
    assert table.split("hot") == (0, 2)
    assert table.split("a") is None
    assert table.splits == {"hot": (0, 2)}
    assert table.num_split_keys == 1
    assert list(table.split_keys()) == ["hot"]
    # Non-hybrid consumers see the consolidated single-owner view.
    assert table.lookup("hot") is None
    # .splits is a read-only view, not a mutable copy.
    view = table.splits
    with pytest.raises(TypeError):
        view["x"] = (1,)
    assert table.num_split_keys == 1


def test_with_splits_keeps_mapping_and_replaces_split_set():
    base = RoutingTable({"a": 1}, {"old": (0, 1)})
    replaced = base.with_splits({"a": (0, 1)})
    assert replaced.lookup("a") == 1
    assert replaced.split("a") == (0, 1)
    assert replaced.split("old") is None
    assert base.split("old") == (0, 1)  # original untouched
    assert replaced.with_splits(None).splits == {}


def test_equality_includes_splits():
    assert RoutingTable({"a": 1}, {"h": (0, 1)}) == RoutingTable(
        {"a": 1}, {"h": (0, 1)}
    )
    assert RoutingTable({"a": 1}, {"h": (0, 1)}) != RoutingTable({"a": 1})
    assert RoutingTable({"a": 1}, {"h": (0, 1)}) != RoutingTable(
        {"a": 1}, {"h": (0, 2)}
    )


def test_max_instance_includes_split_members():
    assert RoutingTable().max_instance() is None
    assert RoutingTable({"a": 2}).max_instance() == 2
    assert RoutingTable({"a": 2}, {"h": (0, 5)}).max_instance() == 5
    assert RoutingTable({}, {"h": (1,)}).max_instance() == 1


def test_moved_keys_excludes_keys_split_in_either_table():
    old = RoutingTable({"hot": 0, "k": 0}, {"hot": (0, 1)})
    new = RoutingTable({"hot": 2, "k": 1})
    # "hot" was split: it consolidates (split_consolidations), never
    # appears as a single-owner move.
    assert old.moved_keys(new, lambda k: 9) == {"k": (0, 1)}
    # Split in the *new* table: partial state stays put, nothing moves.
    old2 = RoutingTable({"hot": 0})
    new2 = RoutingTable({"hot": 2}, {"hot": (1, 2)})
    assert old2.moved_keys(new2, lambda k: 9) == {}


def test_split_consolidations():
    old = RoutingTable(
        {"h": 0, "g": 1},
        {"h": (0, 1), "g": (1, 2), "f": (0, 3)},
    )
    new = RoutingTable({"h": 2}, {"g": (1, 2)})
    cons = old.split_consolidations(new, lambda k: 7)
    # "h" unsplits onto its new owner; "g" stays split (nothing to
    # gather); "f" unsplits with no table entry, so the fallback owner
    # collects it.
    assert cons == {"h": ((0, 1), 2), "f": ((0, 3), 7)}
