"""The fuzz CLI: clean sweeps, bundle writing, identical replay."""

import json
import os

from repro.testing import load_bundle, replay_bundle
from repro.testing.fuzz import main


def test_clean_sweep_exits_zero(tmp_path, capsys):
    bundle_dir = str(tmp_path / "bundles")
    code = main(
        ["--seeds", "3", "--master-seed", "0", "--bundle-dir", bundle_dir]
    )
    assert code == 0
    assert not os.path.exists(bundle_dir)
    out = capsys.readouterr().out
    assert "0 with violations" in out


def test_injected_violation_yields_replayable_bundle(tmp_path, capsys):
    """The ISSUE's acceptance loop: a deliberately injected bug is
    caught, produces a bundle, and replaying the bundle reproduces the
    identical failing trace."""
    bundle_dir = str(tmp_path / "bundles")
    code = main(
        [
            "--seeds", "1",
            "--master-seed", "0",
            "--inject", "double_migrate",
            "--bundle-dir", bundle_dir,
        ]
    )
    assert code == 1
    path = os.path.join(bundle_dir, "bundle-seed0.json")
    assert os.path.exists(path)

    data = load_bundle(path)
    assert data["config"]["inject"] == "double_migrate"
    assert data["violations"]
    kinds = {v["invariant"] for v in data["violations"]}
    assert "duplicate_install" in kinds

    outcome = replay_bundle(path)
    assert outcome.fingerprint_matches
    assert outcome.violations_match
    assert outcome.reproduced

    # The CLI replay path agrees.
    capsys.readouterr()
    assert main(["--replay", path]) == 0
    assert "identical trace reproduced" in capsys.readouterr().out


def test_bundle_schema_is_versioned(tmp_path):
    bogus = tmp_path / "bad.json"
    bogus.write_text(json.dumps({"schema": "something-else"}))
    try:
        load_bundle(str(bogus))
    except ValueError as err:
        assert "unsupported bundle schema" in str(err)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError for unknown schema")


def test_verbose_mode_prints_fingerprints(capsys, tmp_path):
    code = main(
        [
            "--seeds", "1",
            "--master-seed", "3",
            "--verbose",
            "--bundle-dir", str(tmp_path / "bundles"),
        ]
    )
    assert code == 0
    assert "fingerprint=0x" in capsys.readouterr().out


def test_hybrid_sweep_exits_zero(tmp_path, capsys):
    bundle_dir = str(tmp_path / "bundles")
    code = main(
        [
            "--seeds", "2",
            "--master-seed", "0",
            "--hybrid",
            "--bundle-dir", bundle_dir,
        ]
    )
    assert code == 0
    assert not os.path.exists(bundle_dir)
    assert "0 with violations" in capsys.readouterr().out


def test_hybrid_flag_draws_from_a_separate_rng_stream():
    """--hybrid must not perturb the base episode: every non-hybrid
    field is drawn from the same named RNG streams, so the same seed
    yields the identical episode with splitting merely switched on."""
    from dataclasses import asdict

    from repro.testing.episode import generate_config
    from repro.testing.rng import RngTree

    for seed in range(3):
        base = asdict(generate_config(RngTree(9), seed))
        hybrid = asdict(generate_config(RngTree(9), seed, hybrid=True))
        assert not base["hybrid"]
        assert hybrid["hybrid"], "hybrid episodes must carry settings"
        hot_fraction, split_width, max_split_keys = hybrid["hybrid"]
        assert 0.3 <= hot_fraction <= 0.8
        assert split_width in (2, 3)
        assert max_split_keys in (2, 4, 8)
        base.pop("hybrid"), hybrid.pop("hybrid")
        assert base == hybrid
