"""Property tests: vectorized edge routing == scalar routers.

The vectorized backend resolves a route *once per distinct key* into a
numpy array and gathers per batch; the scalar routers resolve per
tuple through LRU caches. These properties pin that the two paths are
the same function:

- table/hash streams: ``_VectorEdge`` routes every key exactly where
  ``TableRouter`` / ``_HashFieldsRouter`` would, for arbitrary keys,
  seeds, widths and (partial) tables — including after a table swap;
- PKG streams: the vectorized candidate arrays equal
  ``candidate_instances`` and every pick stays inside them;
- hybrid streams: split keys land inside their member set, tail keys
  route exactly like the table router;
- key interning is type-tagged: ``1``, ``1.0`` and ``True`` are equal
  as dict keys but are distinct routing keys (distinct reprs, hence
  potentially distinct hashes) — the vocabulary must never alias them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing_table import RoutingTable
from repro.engine.backends.vectorized import _Meter, _VectorEdge, _Vocab
from repro.engine.costs import DEFAULT_COSTS
from repro.engine.grouping import (
    FieldsGrouping,
    HybridTableFieldsGrouping,
    PartialKeyGrouping,
    RouterContext,
    TableFieldsGrouping,
    candidate_instances,
)
from repro.engine.physical import TupleBatch

keys_st = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(max_size=8),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.none(),
)


def _edge(kind, n, seed, table=None, d=2, num_servers=2):
    meter = _Meter(num_servers, DEFAULT_COSTS, bandwidth_gbps=None)
    placement = np.arange(max(n, 1), dtype=np.int64) % num_servers
    return _VectorEdge(
        "prop",
        kind,
        key_fn=lambda values: values[0],
        key_spec=0,
        seed=seed,
        num_destinations=n,
        table=table,
        d=d,
        src_placement=placement,
        dst_placement=placement,
        meter=meter,
    )


def _context(n, seed):
    return RouterContext(
        stream_name="prop",
        src_instance=0,
        src_server=0,
        dst_placements=[0] * n,
        seed=seed,
    )


def _route_batch(edge, keys):
    batch = TupleBatch(
        [(k,) for k in keys],
        src_instances=np.zeros(len(keys), dtype=np.int64),
        sizes=np.full(len(keys), 100, dtype=np.int64),
    )
    return edge(batch).dst_instances


@given(
    keys=st.lists(keys_st, min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**32),
    n=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=150, deadline=None)
def test_hash_edge_matches_scalar_fields_router(keys, seed, n):
    edge = _edge("hash", n, seed)
    router = FieldsGrouping(0).build_router(_context(n, seed))
    dst = _route_batch(edge, keys)
    for i, key in enumerate(keys):
        assert [int(dst[i])] == router.select((key,))


@given(
    keys=st.lists(keys_st, min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**32),
    n=st.integers(min_value=2, max_value=9),
    mapped=st.dictionaries(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=1),
        max_size=20,
    ),
)
@settings(max_examples=150, deadline=None)
def test_table_edge_matches_scalar_table_router(keys, seed, n, mapped):
    # table covers some int keys (instances 0/1, valid for any n >= 2);
    # everything else exercises the hash fallback path
    table = RoutingTable(mapped)
    edge = _edge("table", n, seed, table=table)
    router = TableFieldsGrouping(0, table=table).build_router(
        _context(n, seed)
    )
    dst = _route_batch(edge, keys)
    for i, key in enumerate(keys):
        assert [int(dst[i])] == router.select((key,))


@given(
    keys=st.lists(
        st.integers(min_value=-100, max_value=100), min_size=1, max_size=40
    ),
    seed=st.integers(min_value=0, max_value=2**32),
    n=st.integers(min_value=2, max_value=9),
    mapped=st.dictionaries(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=1),
        max_size=20,
    ),
)
@settings(max_examples=100, deadline=None)
def test_table_swap_rebuilds_routes_like_update_table(keys, seed, n, mapped):
    edge = _edge("table", n, seed, table=None)
    router = TableFieldsGrouping(0).build_router(_context(n, seed))
    _route_batch(edge, keys)  # populate vocab + routes under no table
    table = RoutingTable(mapped)
    edge.rebuild(table, None)
    router.update_table(table)
    dst = _route_batch(edge, keys)
    for i, key in enumerate(keys):
        assert [int(dst[i])] == router.select((key,))


@given(
    keys=st.lists(keys_st, min_size=1, max_size=30),
    seed=st.integers(min_value=0, max_value=2**32),
    n=st.integers(min_value=2, max_value=9),
    d=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_pkg_edge_candidates_match_and_contain_picks(keys, seed, n, d):
    edge = _edge("pkg", n, seed, d=d)
    dst = _route_batch(edge, keys)
    for i, key in enumerate(keys):
        expected = candidate_instances(key, seed, n, d)
        kid = edge.vocab.memo[(key.__class__, key)]
        assert tuple(edge.cands[kid]) == expected
        assert int(dst[i]) in expected


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=60
    ),
    seed=st.integers(min_value=0, max_value=2**32),
    n=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=100, deadline=None)
def test_hybrid_split_containment_and_tail_exactness(keys, seed, n):
    # key 0 is split over instances {0, 1}; the tail is table/hash
    table = RoutingTable(
        {k: k % n for k in range(5)}, splits={0: (0, 1)}
    )
    edge = _edge("hybrid", n, seed, table=table)
    tail_router = TableFieldsGrouping(0, table=table).build_router(
        _context(n, seed)
    )
    dst = _route_batch(edge, keys)
    for i, key in enumerate(keys):
        if key == 0:
            assert int(dst[i]) in (0, 1)
        else:
            assert [int(dst[i])] == tail_router.select((key,))


def test_vocab_is_type_tagged():
    vocab = _Vocab()
    ids, _ = vocab.encode([1, 1.0, True, 1, "1"], "prop")
    # equal-as-dict-keys values of different types get distinct ids
    assert ids[0] != ids[1] != ids[2]
    assert ids[0] == ids[3]
    assert len(vocab) == 4


def test_shuffle_edge_round_robins_per_source_instance():
    edge = _edge("shuffle", 4, seed=0)
    batch = TupleBatch(
        [(i,) for i in range(6)],
        src_instances=np.full(6, 2, dtype=np.int64),
        sizes=np.full(6, 100, dtype=np.int64),
    )
    first = edge(batch).dst_instances
    # starts at its source instance index, like _ShuffleRouter
    assert list(first) == [2, 3, 0, 1, 2, 3]
    second = edge(batch).dst_instances
    assert list(second) == [0, 1, 2, 3, 0, 1]
