"""Coarse graph construction from a matching.

Each matched pair (and each unmatched vertex) becomes one coarse vertex.
Coarse vertex weights are the sums of their constituents; parallel fine
edges are accumulated and edges internal to a pair disappear (they can
never be cut again at coarser levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.partitioning.graph import Graph


@dataclass
class CoarseningLevel:
    """One level of the multilevel hierarchy.

    Attributes
    ----------
    fine:
        The finer graph.
    coarse:
        The coarser graph built from ``fine``.
    fine_to_coarse:
        ``fine_to_coarse[v]`` is the coarse vertex containing fine ``v``.
    """

    fine: Graph
    coarse: Graph
    fine_to_coarse: List[int]

    def project(self, coarse_parts: List[int]) -> List[int]:
        """Project a coarse partition vector back onto the fine graph."""
        return [coarse_parts[c] for c in self.fine_to_coarse]


def coarsen(graph: Graph, match: List[int]) -> CoarseningLevel:
    """Collapse a matching into a coarse graph."""
    n = graph.num_vertices
    fine_to_coarse = [-1] * n
    coarse_weights: List[float] = []
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        partner = match[v]
        coarse_id = len(coarse_weights)
        fine_to_coarse[v] = coarse_id
        weight = graph.vertex_weight(v)
        if partner != v:
            fine_to_coarse[partner] = coarse_id
            weight += graph.vertex_weight(partner)
        coarse_weights.append(weight)

    coarse = Graph(len(coarse_weights), coarse_weights)
    for u, v, weight in graph.edges():
        cu = fine_to_coarse[u]
        cv = fine_to_coarse[v]
        if cu != cv:
            coarse.add_edge(cu, cv, weight)
    return CoarseningLevel(fine=graph, coarse=coarse, fine_to_coarse=fine_to_coarse)


def coarsen_until(
    graph: Graph,
    rng,
    min_vertices: int,
    min_reduction: float = 0.95,
    max_levels: int = 64,
) -> Tuple[Graph, List[CoarseningLevel]]:
    """Repeatedly coarsen until the graph is small or progress stalls.

    Parameters
    ----------
    min_vertices:
        Stop once the coarse graph has at most this many vertices.
    min_reduction:
        Stop when a level shrinks the vertex count by less than
        ``1 - min_reduction`` (i.e. ``coarse_n > min_reduction * fine_n``),
        which happens on star-like graphs where matching saturates.

    Returns
    -------
    (coarsest_graph, levels)
        ``levels`` is ordered from finest to coarsest.
    """
    from repro.partitioning.matching import heavy_edge_matching

    levels: List[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= min_vertices:
            break
        match = heavy_edge_matching(current, rng)
        level = coarsen(current, match)
        if level.coarse.num_vertices > min_reduction * current.num_vertices:
            break
        levels.append(level)
        current = level.coarse
    return current, levels
