#!/usr/bin/env python
"""The paper's Figure 4/5 walkthrough, on the library's own pieces.

1. Count (location, hashtag) pairs with SpaceSaving, as operator
   instances do (Figure 4).
2. Build the bipartite key graph (Figure 5).
3. Partition it with the multilevel partitioner (the Metis step) and
   print which keys land on which server — reproducing the paper's
   conclusion that Asia, #java and #ruby share a server while Oceania
   joins #python.

Run:  python examples/partitioning_demo.py
"""

from repro.core import KeyGraph, compute_assignment, expected_locality
from repro.spacesaving import SpaceSaving

# The exact pair counts of Figure 4/5.
PAIR_COUNTS = {
    ("Asia", "#java"): 3463,
    ("Asia", "#ruby"): 3011,
    ("Asia", "#python"): 969,
    ("Oceania", "#java"): 1201,
    ("Oceania", "#ruby"): 881,
    ("Oceania", "#python"): 3108,
}


def main():
    # 1. Bounded-memory statistics collection (Figure 4).
    sketch = SpaceSaving(capacity=100)
    for pair, count in PAIR_COUNTS.items():
        sketch.offer(pair, weight=count)
    print("instrumentation (SpaceSaving top pairs):")
    for estimate in sketch.top(6):
        print(f"  {estimate.item}: {estimate.count}")

    # 2. The bipartite key graph (Figure 5).
    graph = KeyGraph()
    for estimate in sketch.items():
        location, tag = estimate.item
        graph.add_pair("S->A", location, "A->B", tag, estimate.count)
    print("\nkey graph:")
    for stream in graph.streams():
        keys = sorted(
            graph.to_partition_graph()[1],
            key=lambda v: -graph.vertex_weight(*v),
        )
        for vertex_stream, key in keys:
            if vertex_stream == stream:
                weight = graph.vertex_weight(stream, key)
                print(f"  [{stream}] {key}: weight {weight:.0f}")

    # 3. Partition across 2 servers (α = 1.3: the paper's own split has
    #    imbalance 1.27, see DESIGN.md).
    assignment = compute_assignment(graph, num_parts=2, imbalance=1.3)
    print("\nassignment:")
    for server in (0, 1):
        members = [
            f"{key}" for (stream, key), part in sorted(
                assignment.parts.items(), key=lambda kv: str(kv[0])
            )
            if part == server
        ]
        print(f"  server {server}: {', '.join(members)}")
    locality = expected_locality(graph, assignment)
    total = sum(PAIR_COUNTS.values())
    print(f"\nco-located pair traffic: {locality:.0%} of {total} tuples")


if __name__ == "__main__":
    main()
