"""The campaign CLI: ``python -m repro.campaign <command>``.

Commands::

    run <campaign.yaml>            # run the full matrix, write reports,
                                   # diff against the committed baseline
    run <campaign.yaml> --cell ID  # re-run one cell; verified against
                                   # the recorded report when one exists
    list <campaign.yaml>           # print the planned cells and exit

``run`` writes ``report.jsonl`` + ``report.md`` under the output
directory (default ``results/campaigns/<name>``) and exits 0 only when
every cell is ok **and** no directed metric regressed beyond tolerance
against the committed baseline (``--no-gate`` reports without
failing; ``--record-baseline`` re-records the baseline from this run).
``run --cell`` exits 2 when the cell's fingerprint diverges from the
recorded campaign report — that is the reproducibility check CI runs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.campaign.baseline import (
    diff_campaign,
    load_baseline,
    write_baseline,
)
from repro.campaign.collector import (
    load_jsonl,
    metrics_by_cell,
    report_header,
    write_jsonl,
)
from repro.campaign.config import CampaignError, load_campaign
from repro.campaign.executor import run_cells
from repro.campaign.planner import find_cell, plan
from repro.campaign.report import gate_failures, render_markdown


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=(
            "Declarative scenario campaigns: matrix sweeps with "
            "per-cell isolation and regression-tracked reports."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a campaign (or one cell)")
    run.add_argument("campaign", help="campaign file (YAML or JSON)")
    run.add_argument(
        "--cell",
        metavar="ID",
        default=None,
        help="run only this cell id; verified against the recorded "
        "report's fingerprint when report.jsonl exists",
    )
    run.add_argument(
        "--out",
        default=None,
        help="output directory (default results/campaigns/<name>)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel worker processes (default: campaign file / cpus)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell timeout in seconds (default: campaign file)",
    )
    run.add_argument(
        "--no-gate",
        action="store_true",
        help="report failures and regressions without a non-zero exit",
    )
    run.add_argument(
        "--record-baseline",
        action="store_true",
        help="write this run's metrics as the committed baseline",
    )

    lister = commands.add_parser("list", help="print the planned cells")
    lister.add_argument("campaign", help="campaign file (YAML or JSON)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = load_campaign(args.campaign)
        cells = plan(config)
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2

    if args.command == "list":
        print(
            f"{config.name}: {len(cells)} cells "
            f"({config.cells_per_seed} matrix points x "
            f"{len(config.seeds)} seed(s)), runner={config.runner}"
        )
        for cell in cells:
            print(f"  {cell.id}")
        return 0

    out_dir = args.out or os.path.join("results", "campaigns", config.name)
    timeout_s = args.timeout if args.timeout is not None else config.timeout_s
    workers = args.workers if args.workers is not None else config.workers

    if args.cell is not None:
        return _run_single(args, config, cells, out_dir, timeout_s)
    return _run_campaign(args, config, cells, out_dir, timeout_s, workers)


def _run_campaign(args, config, cells, out_dir, timeout_s, workers) -> int:
    print(
        f"campaign {config.name}: {len(cells)} cells, "
        f"timeout {timeout_s:g}s/cell"
    )

    def progress(result, done, total):
        marker = "ok" if result.ok else result.status.upper()
        print(f"  [{done}/{total}] {result.id}: {marker}")

    results = run_cells(
        cells, out_dir, timeout_s=timeout_s, workers=workers,
        on_done=progress,
    )

    jsonl_path = os.path.join(out_dir, "report.jsonl")
    header = write_jsonl(jsonl_path, config, results)

    diff = None
    baseline_path = config.baseline_path()
    cell_metrics = metrics_by_cell(results)
    if args.record_baseline and baseline_path:
        write_baseline(
            baseline_path,
            config.name,
            cell_metrics,
            fingerprints={
                r.id: r.fingerprint for r in results if r.fingerprint
            },
        )
        print(f"baseline recorded: {baseline_path}")
    if baseline_path and os.path.exists(baseline_path):
        diff = diff_campaign(
            load_baseline(baseline_path),
            cell_metrics,
            tolerance=config.tolerance,
            extra_axes=config.axes,
        )

    markdown = render_markdown(
        header,
        results,
        diff=diff,
        tolerance=config.tolerance,
        baseline_path=baseline_path,
    )
    md_path = os.path.join(out_dir, "report.md")
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print(f"report: {md_path} (+ {jsonl_path})")

    problems = gate_failures(results, diff)
    for problem in problems:
        print(f"GATE: {problem}", file=sys.stderr)
    if problems and not args.no_gate:
        return 1
    return 0


def _run_single(args, config, cells, out_dir, timeout_s) -> int:
    try:
        cell = find_cell(cells, args.cell)
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2

    rerun_dir = os.path.join(out_dir, "rerun")
    (result,) = run_cells(
        [cell], rerun_dir, timeout_s=timeout_s, workers=1
    )
    print(
        f"cell {result.id}: {result.status} "
        f"fingerprint={result.fingerprint or '—'} "
        f"metrics={ {k: round(v, 4) for k, v in sorted(result.metrics.items())} }"
    )
    if not result.ok:
        if result.error:
            print(result.error, file=sys.stderr)
        return 1

    jsonl_path = os.path.join(out_dir, "report.jsonl")
    if not os.path.exists(jsonl_path):
        print(
            f"(no recorded report at {jsonl_path}; nothing to verify "
            f"against)"
        )
        return 0
    _, recorded = load_jsonl(jsonl_path)
    match = next((r for r in recorded if r.id == result.id), None)
    if match is None:
        print(
            f"(cell {result.id} is not in the recorded report; "
            f"nothing to verify against)"
        )
        return 0
    if match.fingerprint != result.fingerprint:
        print(
            f"REPRODUCTION FAILED: recorded fingerprint "
            f"{match.fingerprint} != re-run {result.fingerprint}",
            file=sys.stderr,
        )
        return 2
    if match.fingerprint is None:
        print("recorded cell has no fingerprint (non-episode runner); ok")
        return 0
    print(f"reproduced: fingerprint {result.fingerprint} matches the report")
    return 0


if __name__ == "__main__":
    sys.exit(main())
