"""Partition quality metrics: edge cut and load balance."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import PartitioningError
from repro.partitioning.graph import Graph


def edge_cut(graph: Graph, parts: Sequence[int]) -> float:
    """Total weight of edges whose endpoints are in different parts."""
    if len(parts) != graph.num_vertices:
        raise PartitioningError(
            f"partition vector has {len(parts)} entries for "
            f"{graph.num_vertices} vertices"
        )
    cut = 0.0
    for u, v, weight in graph.edges():
        if parts[u] != parts[v]:
            cut += weight
    return cut


def part_weights(
    graph: Graph, parts: Sequence[int], nparts: int
) -> List[float]:
    """Total vertex weight per part."""
    if len(parts) != graph.num_vertices:
        raise PartitioningError(
            f"partition vector has {len(parts)} entries for "
            f"{graph.num_vertices} vertices"
        )
    weights = [0.0] * nparts
    for v, part in enumerate(parts):
        if not 0 <= part < nparts:
            raise PartitioningError(
                f"vertex {v} assigned to part {part}, outside [0, {nparts})"
            )
        weights[part] += graph.vertex_weight(v)
    return weights


def balance(
    graph: Graph,
    parts: Sequence[int],
    nparts: int,
    targets: Optional[Sequence[float]] = None,
) -> float:
    """Max over parts of (actual weight / target weight).

    A perfectly balanced partition scores 1.0; the paper's constraint is
    that this value stays below the imbalance bound α (1.03 by default).
    Equal targets (total/nparts) are assumed unless given explicitly.
    """
    weights = part_weights(graph, parts, nparts)
    total = graph.total_vertex_weight
    if total <= 0:
        return 1.0
    if targets is None:
        targets = [total / nparts] * nparts
    worst = 0.0
    for weight, target in zip(weights, targets):
        if target <= 0:
            if weight > 0:
                return float("inf")
            continue
        worst = max(worst, weight / target)
    return worst
