"""Deploying topologies on clusters and running measurements.

``deploy`` builds executors and wires routers; ``run`` is the one-call
experiment driver used by the benchmarks: build, warm up, measure,
report a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.acker import Acker
from repro.engine.cluster import Cluster
from repro.engine.costs import DEFAULT_COSTS, CostModel
from repro.engine.executor import BaseExecutor, BoltExecutor, SpoutExecutor
from repro.engine.grouping import RouterContext, stable_hash
from repro.engine.metrics import MetricsHub, ThroughputSampler
from repro.engine.operators import Spout
from repro.engine.simulator import Simulator
from repro.engine.topology import Topology
from repro.errors import DeploymentError

PlacementFn = Callable[[str, int, int], int]


def round_robin_placement(num_servers: int) -> PlacementFn:
    """The paper's static placement: instance ``i`` of every operator
    runs on server ``i mod n`` — so each server hosts one instance of
    each PO."""

    def place(op_name: str, instance: int, parallelism: int) -> int:
        return instance % num_servers

    return place


class Deployment:
    """A topology instantiated on a cluster."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        topology: Topology,
        executors: Dict[str, List[BaseExecutor]],
        metrics: MetricsHub,
        acker: Acker,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.topology = topology
        self.executors = executors
        self.metrics = metrics
        self.acker = acker
        #: observers called with every executor created by
        #: :meth:`spawn_instance` / removed by :meth:`retire_instance` —
        #: the seams the invariant suite and fault injector use to track
        #: an instance set that changes at runtime
        self.spawn_observers: List[Callable[[BaseExecutor], None]] = []
        self.retire_observers: List[Callable[[BaseExecutor], None]] = []

    def executor(self, op_name: str, instance: int) -> BaseExecutor:
        return self.executors[op_name][instance]

    def instances(self, op_name: str) -> List[BaseExecutor]:
        return list(self.executors[op_name])

    def all_executors(self) -> List[BaseExecutor]:
        return [e for group in self.executors.values() for e in group]

    def spout_executors(self) -> List[SpoutExecutor]:
        return [
            e
            for e in self.all_executors()
            if isinstance(e, SpoutExecutor)
        ]

    def start(self) -> None:
        """Start every spout's polling loop."""
        for spout in self.spout_executors():
            spout.start()

    def run_until(self, time_s: float) -> None:
        self.sim.run(until=time_s)

    def close(self) -> None:
        for executor in self.all_executors():
            executor.close()

    def placement_of(self, op_name: str) -> List[int]:
        """Server index of each instance of ``op_name``."""
        return [e.server.index for e in self.executors[op_name]]

    # ------------------------------------------------------------------
    # Elastic rescaling (online instance add/remove)
    # ------------------------------------------------------------------

    def spawn_instance(
        self, op_name: str, server, *, notify: bool = True
    ) -> BoltExecutor:
        """Create, wire and open one new instance of bolt ``op_name``
        on ``server``, with the next instance index.

        Wiring replicates :func:`deploy`: one router per output stream
        (built against the *current* destination lists — a rescale
        round swaps them atomically via the protocol's edge updates)
        and the input key extractors. ``notify=False`` defers the spawn
        observers so the caller can finish installing control handlers
        first (see :meth:`notify_spawned`).
        """
        from repro.engine.executor import OutEdge

        op = self.topology.operator(op_name)
        if op.is_spout:
            raise DeploymentError(
                f"cannot spawn a spout instance of {op_name!r}: spout "
                f"sharding is fixed at deployment"
            )
        group = self.executors[op_name]
        template = group[0]
        instance = len(group)
        costs = template.costs
        operator = op.factory()
        executor = BoltExecutor(
            sim=self.sim,
            cluster=self.cluster,
            op_name=op_name,
            instance=instance,
            parallelism=template.parallelism,
            server=server,
            operator=operator,
            costs=costs,
            metrics=self.metrics,
            acker=self.acker,
        )
        group.append(executor)
        for stream in self.topology.outputs_of(op_name):
            destinations = self.executors[stream.dst]
            context = RouterContext(
                stream_name=stream.name,
                src_instance=instance,
                src_server=server.index,
                dst_placements=[e.server.index for e in destinations],
                seed=stable_hash(stream.name),
                cache_size=costs.router_cache_size,
            )
            router = stream.grouping.build_router(context)
            executor.add_out_edge(
                OutEdge(
                    stream.name,
                    router,
                    list(destinations),
                    getattr(stream.grouping, "key_fn", None),
                )
            )
        for stream in self.topology.inputs_of(op_name):
            key_fn = getattr(stream.grouping, "key_fn", None)
            if key_fn is not None:
                executor.in_key_fns[stream.src] = key_fn
        operator.open(executor.make_context())
        if notify:
            self.notify_spawned(executor)
        return executor

    def notify_spawned(self, executor: BaseExecutor) -> None:
        """Fire the spawn observers for ``executor`` (separately
        callable so a manager can attach the reconfiguration agent
        before observers wrap the control handler)."""
        for observer in self.spawn_observers:
            observer(executor)

    def retire_instance(self, op_name: str) -> BaseExecutor:
        """Remove and close the highest-index instance of ``op_name``.
        Retire observers run *before* close so they can audit the
        instance's final state (e.g. assert it drained cleanly)."""
        group = self.executors[op_name]
        if len(group) <= 1:
            raise DeploymentError(
                f"cannot retire the last instance of {op_name!r}"
            )
        executor = group.pop()
        for observer in self.retire_observers:
            observer(executor)
        executor.close()
        return executor


def deploy(
    sim: Simulator,
    cluster: Cluster,
    topology: Topology,
    costs: CostModel = DEFAULT_COSTS,
    placement: Optional[PlacementFn] = None,
    max_pending: int = 256,
    metrics: Optional[MetricsHub] = None,
    message_timeout_s: Optional[float] = None,
) -> Deployment:
    """Instantiate ``topology`` on ``cluster``.

    Raises
    ------
    DeploymentError
        If the placement function returns an invalid server.
    """
    if placement is None:
        placement = round_robin_placement(cluster.num_servers)
    if metrics is None:
        metrics = MetricsHub()
    acker = Acker(
        sim,
        costs.ack_delay_s,
        latency_stats=metrics.latency,
        timeout_s=message_timeout_s,
    )

    executors: Dict[str, List[BaseExecutor]] = {}
    for op in topology.operators.values():
        group: List[BaseExecutor] = []
        for instance in range(op.parallelism):
            server_index = placement(op.name, instance, op.parallelism)
            if not 0 <= server_index < cluster.num_servers:
                raise DeploymentError(
                    f"placement of {op.name}[{instance}] on server "
                    f"{server_index} outside cluster of "
                    f"{cluster.num_servers}"
                )
            server = cluster.server(server_index)
            operator = op.factory()
            common = dict(
                sim=sim,
                cluster=cluster,
                op_name=op.name,
                instance=instance,
                parallelism=op.parallelism,
                server=server,
                operator=operator,
                costs=costs,
                metrics=metrics,
                acker=acker,
            )
            if op.is_spout:
                if not isinstance(operator, Spout):
                    raise DeploymentError(
                        f"factory of spout {op.name!r} returned "
                        f"{type(operator).__name__}, not a Spout"
                    )
                executor: BaseExecutor = SpoutExecutor(
                    max_pending=max_pending, **common
                )
            else:
                executor = BoltExecutor(**common)
            group.append(executor)
        executors[op.name] = group

    # Wire streams: one router per (stream, source instance).
    from repro.engine.executor import OutEdge

    for stream in topology.streams:
        destinations = executors[stream.dst]
        dst_placements = [e.server.index for e in destinations]
        key_fn = getattr(stream.grouping, "key_fn", None)
        seed = stable_hash(stream.name)
        for src_executor in executors[stream.src]:
            context = RouterContext(
                stream_name=stream.name,
                src_instance=src_executor.instance,
                src_server=src_executor.server.index,
                dst_placements=dst_placements,
                seed=seed,
                cache_size=costs.router_cache_size,
            )
            router = stream.grouping.build_router(context)
            src_executor.add_out_edge(
                OutEdge(stream.name, router, list(destinations), key_fn)
            )
        if key_fn is not None:
            for dst_executor in destinations:
                dst_executor.in_key_fns[stream.src] = key_fn

    deployment = Deployment(sim, cluster, topology, executors, metrics, acker)
    for executor in deployment.all_executors():
        executor.operator.open(executor.make_context())
    return deployment


@dataclass
class RunConfig:
    """Parameters of a measurement run."""

    duration_s: float = 10.0
    warmup_s: float = 2.0
    num_servers: int = 2
    bandwidth_gbps: Optional[float] = 10.0
    latency_s: float = 50.0e-6
    max_pending: int = 256
    sample_interval_s: Optional[float] = None
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    placement: Optional[PlacementFn] = None


@dataclass
class RunResult:
    """Outcome of a measurement run."""

    #: tuples/second at the primary sink, measured after warmup.
    throughput: float
    #: throughput per sink operator.
    sink_throughput: Dict[str, float]
    #: post-warmup locality per stream (fraction of local deliveries).
    stream_locality: Dict[str, float]
    #: post-warmup overall locality across all streams.
    locality: float
    #: load balance (max/mean received) per operator.
    load_balance: Dict[str, float]
    #: (time, rate) samples at the primary sink, if sampling enabled.
    samples: List[Tuple[float, float]]
    #: post-warmup end-to-end latency: (mean, p50, p99, max) seconds.
    latency_mean: float
    latency_p50: float
    latency_p99: float
    latency_max: float
    #: the deployment, for deeper inspection.
    deployment: Deployment
    #: simulated seconds actually measured.
    measured_s: float


def run(
    topology: Topology,
    config: Optional[RunConfig] = None,
    on_deployed: Optional[Callable[[Deployment], None]] = None,
) -> RunResult:
    """Build, warm up and measure a topology.

    Parameters
    ----------
    on_deployed:
        Optional hook called after deployment, before the clock starts —
        used to attach managers/instrumentation (see repro.core).
    """
    config = config or RunConfig()
    if config.duration_s <= config.warmup_s:
        raise DeploymentError(
            f"duration {config.duration_s}s must exceed warmup "
            f"{config.warmup_s}s"
        )
    sim = Simulator()
    cluster = Cluster(
        sim,
        config.num_servers,
        bandwidth_gbps=config.bandwidth_gbps,
        latency_s=config.latency_s,
    )
    deployment = deploy(
        sim,
        cluster,
        topology,
        costs=config.costs,
        placement=config.placement,
        max_pending=config.max_pending,
    )
    if on_deployed is not None:
        on_deployed(deployment)

    sinks = topology.sinks()
    if not sinks:
        raise DeploymentError("topology has no sink operator to measure")
    primary_sink = sinks[-1]

    sampler = None
    if config.sample_interval_s is not None:
        sampler = ThroughputSampler(
            sim, deployment.metrics, primary_sink, config.sample_interval_s
        )
        sampler.start()

    deployment.start()
    deployment.run_until(config.warmup_s)
    snapshot = deployment.metrics.snapshot()
    deployment.metrics.latency.reset()
    deployment.run_until(config.duration_s)
    deployment.close()

    measured = config.duration_s - config.warmup_s
    metrics = deployment.metrics
    sink_throughput = {
        sink: (metrics.processed_total(sink) - snapshot.processed_total(sink))
        / measured
        for sink in sinks
    }

    stream_locality = {}
    local_sum = 0
    total_sum = 0
    for name, counters in metrics.streams.items():
        base = snapshot.streams.get(name)
        delta = counters.minus(base) if base is not None else counters
        stream_locality[name] = delta.locality()
        local_sum += delta.local_tuples
        total_sum += delta.total_tuples

    load_balance = {
        op.name: metrics.load_balance(op.name, op.parallelism)
        for op in topology.bolts
    }

    return RunResult(
        throughput=sink_throughput[primary_sink],
        sink_throughput=sink_throughput,
        stream_locality=stream_locality,
        locality=(local_sum / total_sum) if total_sum else 1.0,
        load_balance=load_balance,
        samples=list(sampler.samples) if sampler else [],
        latency_mean=metrics.latency.mean,
        latency_p50=metrics.latency.percentile(0.50),
        latency_p99=metrics.latency.percentile(0.99),
        latency_max=metrics.latency.max,
        deployment=deployment,
        measured_s=measured,
    )
