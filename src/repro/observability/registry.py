"""The metric registry: named counters, gauges and bounded histograms.

One :class:`MetricRegistry` per run is the single store every layer
publishes into — the engine's :class:`~repro.engine.metrics.MetricsHub`
keeps its tallies *inside* the registry (as registered stat objects and
callbacks), so an exporter reading the registry and the hub's own
locality / load-balance computations see the same counters. There is no
second tally to drift or double-count.

Design constraints, in order:

1. **Hot-path cost.** ``Counter.inc`` is one attribute add; acquiring a
   metric (``registry.counter(...)``) is the slow path and is meant to
   be done once and cached by the publisher. Nothing in this module
   allocates per observation.
2. **Bounded memory.** Histograms use fixed bucket boundaries; label
   sets are expected to be low-cardinality (operators, streams, links).
3. **No dependencies.** Export is a plain list of dict samples that the
   JSONL sink serializes (see :mod:`repro.observability.sink`).

Metric names follow ``<subsystem>_<quantity>_<unit>`` (catalog in
DESIGN.md §8.2); labels are keyword arguments.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (tuples, bytes, messages)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def telemetry_value(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (occupancy, depth, last-round quantities)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def telemetry_value(self) -> float:
        return self.value


#: Default histogram boundaries: decades from 1 µs to 100 s — wide
#: enough for both latencies (seconds) and sizes (bytes) in this repo.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


class Histogram:
    """A bounded histogram: fixed bucket boundaries, constant memory.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the overflow bucket. Mean and an interpolation-free quantile
    estimate come from the bucket counts, so no samples are retained
    (unlike :class:`repro.engine.metrics.LatencyStats`, which keeps a
    reservoir — this one is for export, not precise percentiles).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def telemetry_value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": dict(zip(self.bounds, self.counts)),
            "overflow": self.counts[-1],
        }


class MetricRegistry:
    """Get-or-create store for every metric of one run.

    Besides plain counters/gauges/histograms, two mechanisms let other
    layers keep *their* structures as the single source of truth:

    - :meth:`state` registers an arbitrary stat object (anything with a
      ``telemetry_value()`` method, e.g. the engine's per-stream
      :class:`~repro.engine.metrics.StreamCounters`) under a metric
      name, so the owner and the exporter share one object;
    - :meth:`register_callback` registers a zero-argument callable
      sampled at collection time (for tallies too hot to wrap).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}
        self._callbacks: Dict[Tuple[str, LabelKey], Callable[[], Any]] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, "gauge", Gauge, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", lambda: Histogram(buckets), labels
        )

    def state(self, name: str, factory: Callable[[], Any], **labels: Any):
        """Get-or-create an arbitrary shared stat object (must expose
        ``telemetry_value()``)."""
        return self._get_or_create(name, "state", factory, labels)

    def register_callback(
        self, name: str, fn: Callable[[], Any], **labels: Any
    ) -> None:
        """Register (or replace) a sampled-at-collect callback."""
        self._kinds.setdefault(name, "callback")
        self._check_kind(name, "callback")
        self._callbacks[(name, _label_key(labels))] = fn

    def _get_or_create(self, name, kind, factory, labels):
        self._kinds.setdefault(name, kind)
        self._check_kind(name, kind)
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def _check_kind(self, name: str, kind: str) -> None:
        if self._kinds[name] != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{self._kinds[name]}, not {kind}"
            )

    # -- introspection ---------------------------------------------------

    def get(self, name: str, **labels: Any):
        """The metric object under (name, labels), or None."""
        return self._metrics.get((name, _label_key(labels)))

    def states(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """All (labels, object) entries registered under ``name``."""
        return [
            (dict(key[1]), metric)
            for key, metric in self._metrics.items()
            if key[0] == name
        ]

    def __len__(self) -> int:
        return len(self._metrics) + len(self._callbacks)

    # -- export ----------------------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        """Sample every metric into export records (sorted by name then
        labels, so exports are deterministic)."""
        samples = []
        for (name, labels), metric in self._metrics.items():
            samples.append(
                {
                    "metric": name,
                    "kind": self._kinds[name],
                    "labels": dict(labels),
                    "value": metric.telemetry_value(),
                }
            )
        for (name, labels), fn in self._callbacks.items():
            samples.append(
                {
                    "metric": name,
                    "kind": "gauge",
                    "labels": dict(labels),
                    "value": fn(),
                }
            )
        samples.sort(key=lambda s: (s["metric"], sorted(s["labels"].items())))
        return samples

    def value(self, name: str, **labels: Any):
        """Convenience: the sampled value of one metric (callbacks
        included), or None when absent."""
        metric = self.get(name, **labels)
        if metric is not None:
            return metric.telemetry_value()
        fn = self._callbacks.get((name, _label_key(labels)))
        return fn() if fn is not None else None
