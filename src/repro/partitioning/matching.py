"""Heavy-edge matching for the coarsening phase.

Heavy-edge matching (HEM) visits vertices in random order and matches
each unmatched vertex with the unmatched neighbor connected by the
heaviest edge. Collapsing heavy edges first keeps most of the cut weight
*inside* coarse vertices, which is what makes multilevel partitioning
effective (Karypis & Kumar 1998, Section 3.1).
"""

from __future__ import annotations

import random
from typing import List

from repro.partitioning.graph import Graph


def heavy_edge_matching(graph: Graph, rng: random.Random) -> List[int]:
    """Compute a heavy-edge matching.

    Returns
    -------
    match:
        ``match[v]`` is the vertex matched with ``v``; ``match[v] == v``
        when ``v`` stays unmatched (isolated or all neighbors taken).
    """
    n = graph.num_vertices
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    for v in order:
        if match[v] != -1:
            continue
        best_neighbor = -1
        best_weight = -1.0
        for neighbor, weight in graph.neighbors(v).items():
            if match[neighbor] == -1 and weight > best_weight:
                best_neighbor = neighbor
                best_weight = weight
        if best_neighbor == -1:
            match[v] = v
        else:
            match[v] = best_neighbor
            match[best_neighbor] = v
    return match


def matching_size(match: List[int]) -> int:
    """Number of matched *pairs* in a matching vector."""
    return sum(1 for v, partner in enumerate(match) if partner > v)
