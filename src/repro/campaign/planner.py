"""Matrix expansion: a campaign config becomes an ordered cell list.

Cells are the cross product of the matrix axes × the seed list. Every
cell gets a stable, human-readable id built from its axis assignment
(``axis=value`` pairs in sorted axis order, comma-joined, plus
``seed=N``), so ids survive re-ordering of the campaign file, appear
verbatim in reports and baselines, and can be re-run individually with
``python -m repro.campaign run <campaign> --cell <id>``.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.campaign.config import CampaignConfig, CampaignError

_UNSAFE = re.compile(r"[^A-Za-z0-9._+-]")


def _fmt(value: Any) -> str:
    """One axis value, rendered stably for a cell id."""
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        text = f"{value:g}"
    else:
        text = str(value)
    return _UNSAFE.sub("-", text)


def cell_id(assignment: Dict[str, Any], seed: int) -> str:
    """The stable id for one axis assignment + seed."""
    parts = [
        f"{axis}={_fmt(value)}" for axis, value in sorted(assignment.items())
    ]
    parts.append(f"seed={seed}")
    return ",".join(parts)


@dataclass
class CellSpec:
    """One planned cell: what to run and with which parameters."""

    id: str
    runner: str
    #: merged parameters: campaign defaults + this cell's axis values
    params: Dict[str, Any] = field(default_factory=dict)
    #: the axis values alone (what varies; subset of ``params``)
    assignment: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "runner": self.runner,
            "params": dict(self.params),
            "assignment": dict(self.assignment),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        return cls(
            id=data["id"],
            runner=data["runner"],
            params=dict(data.get("params", {})),
            assignment=dict(data.get("assignment", {})),
            seed=data.get("seed", 0),
        )


def plan(config: CampaignConfig) -> List[CellSpec]:
    """Expand the campaign matrix into its ordered cell list.

    Order is deterministic: axes sorted by name, each axis's values in
    file order, seeds last — so the report rows, the JSONL and the
    baseline all line up run after run.
    """
    axes = sorted(config.matrix)
    cells: List[CellSpec] = []
    for combo in itertools.product(*(config.matrix[axis] for axis in axes)):
        assignment = dict(zip(axes, combo))
        for seed in config.seeds:
            cells.append(
                CellSpec(
                    id=cell_id(assignment, seed),
                    runner=config.runner,
                    params={**config.defaults, **assignment},
                    assignment=assignment,
                    seed=seed,
                )
            )
    ids = [cell.id for cell in cells]
    if len(set(ids)) != len(ids):  # two axis values rendered identically
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise CampaignError(
            f"{config.source}: cell ids collide after formatting: {dupes}"
        )
    return cells


def find_cell(cells: List[CellSpec], wanted: str) -> CellSpec:
    """The cell with id ``wanted``, or a CampaignError naming near
    misses (axis subsets are a common typo)."""
    for cell in cells:
        if cell.id == wanted:
            return cell
    wanted_parts = set(wanted.split(","))
    scored = sorted(
        cells,
        key=lambda cell: -len(wanted_parts & set(cell.id.split(","))),
    )
    hints = "\n  ".join(cell.id for cell in scored[:3])
    raise CampaignError(
        f"no cell with id {wanted!r}; closest planned cells:\n  {hints}"
    )
