"""Small helpers shared by the figure benchmarks."""

import os

#: Where regenerated figure tables are written (also printed with -s).
#: abspath-normalized so saved paths never embed ".." segments.
RESULTS_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "results")
)


def save_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def telemetry_path(name: str) -> str:
    """Where a benchmark exports its telemetry JSONL (render with
    ``python -m repro.analysis.report <path>``)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return os.path.join(RESULTS_DIR, f"{name}.jsonl")


def pivot(rows, row_key, col_key, value_key):
    """rows -> {row: {col: value}} for series-style assertions."""
    table = {}
    for row in rows:
        table.setdefault(row[row_key], {})[row[col_key]] = row[value_key]
    return table


def series_of(rows, filters, x_key, y_key):
    """Filtered rows -> sorted [(x, y)] series."""
    out = []
    for row in rows:
        if all(row[k] == v for k, v in filters.items()):
            out.append((row[x_key], row[y_key]))
    return sorted(out)
