"""Tuple-tree acking and spout flow control.

Storm tracks, for every spout tuple, the tree of downstream tuples it
spawned; the spout keeps at most ``max_pending`` trees in flight. The
simulation models the same credit loop: measured throughput is then the
rate of the bottleneck stage, exactly as on a real Storm cluster with
acking enabled.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError


class Acker:
    """Tracks outstanding tuple counts per tuple tree (root id)."""

    def __init__(
        self,
        sim,
        ack_delay_s: float,
        latency_stats=None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._ack_delay = ack_delay_s
        # root_id -> [outstanding_count, on_complete, started_at,
        #             on_fail, timeout_event]
        self._trees: Dict[int, list] = {}
        self.completed = 0
        self.failed = 0
        #: optional LatencyStats fed with tree completion latencies
        self.latency_stats = latency_stats
        #: Storm's topology.message.timeout: incomplete trees fail and
        #: are replayed by their spout. None disables (tests that
        #: drain exactly once rely on that default).
        self.timeout_s = timeout_s
        # Trees completed at the same simulated instant (a bolt
        # finishing a batch completes several at once) share one
        # ack-delivery event; their callbacks run in completion order,
        # exactly as the equal-time per-tree events would have.
        self._ack_batch: List[Callable[[], None]] = []
        self._ack_batch_time = -1.0

    @property
    def in_flight(self) -> int:
        """Number of incomplete tuple trees."""
        return len(self._trees)

    def register(
        self,
        root_id: int,
        on_complete: Callable[[], None],
        on_fail: Optional[Callable[[], None]] = None,
    ) -> None:
        """Start tracking a new spout tuple.

        ``on_fail`` fires instead of ``on_complete`` if the tree does
        not finish within ``timeout_s`` (when timeouts are enabled).
        """
        if root_id in self._trees:
            raise SimulationError(f"root {root_id} already registered")
        timeout_event = None
        if self.timeout_s is not None and on_fail is not None:
            timeout_event = self._sim.schedule(
                self.timeout_s, self._on_timeout, root_id
            )
        self._trees[root_id] = [
            1, on_complete, self._sim.now, on_fail, timeout_event,
        ]

    def _on_timeout(self, root_id: int) -> None:
        tree = self._trees.pop(root_id, None)
        if tree is None:
            return
        self.failed += 1
        if tree[3] is not None:
            tree[3]()

    def on_processed(self, root_id: int, emitted: int) -> None:
        """One tuple of the tree was fully processed, spawning
        ``emitted`` children."""
        tree = self._trees.get(root_id)
        if tree is None:
            # The tree may already be complete if the root was never
            # anchored (e.g. control-plane emissions); ignore silently.
            return
        tree[0] += emitted - 1
        if tree[0] < 0:
            raise SimulationError(f"negative outstanding for root {root_id}")
        if tree[0] == 0:
            del self._trees[root_id]
            self.completed += 1
            if tree[4] is not None:
                tree[4].cancel()
            if self.latency_stats is not None:
                self.latency_stats.record(self._sim.now - tree[2])
            # The ack message travels back to the spout.
            now = self._sim.now
            if self._ack_batch and self._ack_batch_time == now:
                self._ack_batch.append(tree[1])
            else:
                batch = [tree[1]]
                self._ack_batch = batch
                self._ack_batch_time = now
                self._sim.schedule(self._ack_delay, self._deliver_acks, batch)

    def _deliver_acks(self, batch: List[Callable[[], None]]) -> None:
        for on_complete in batch:
            on_complete()
