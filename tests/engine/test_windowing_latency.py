"""Tests for windowed operators and end-to-end latency tracking."""

import pytest

from repro.engine import (
    Cluster,
    CountBolt,
    FieldsGrouping,
    RunConfig,
    Simulator,
    TopologyBuilder,
    deploy,
    run,
)
from repro.engine.metrics import LatencyStats
from repro.engine.operators import IteratorSpout, OperatorContext
from repro.engine.tuples import make_tuple
from repro.engine.windowing import TopKBolt, TumblingWindowCountBolt


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _context(clock):
    return OperatorContext("op", 0, 1, 0, clock)


class TestTumblingWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            TumblingWindowCountBolt(window_s=0.0)

    def test_counts_within_window(self):
        clock = _Clock()
        bolt = TumblingWindowCountBolt(0, window_s=1.0)
        context = _context(clock)
        for key in ["a", "b", "a"]:
            bolt.process(make_tuple((key,), 0), context)
        assert bolt.state == {"a": 2, "b": 1}
        assert context._drain() == []  # window still open

    def test_flush_on_window_boundary(self):
        clock = _Clock()
        bolt = TumblingWindowCountBolt(0, window_s=1.0)
        context = _context(clock)
        bolt.process(make_tuple(("a",), 0), context)
        bolt.process(make_tuple(("a",), 0), context)
        clock.now = 1.5  # next window
        bolt.process(make_tuple(("b",), 0), context)
        emitted = context._drain()
        assert (0.0, "a", 2) in emitted
        assert bolt.state == {"b": 1}

    def test_forwarding(self):
        clock = _Clock()
        bolt = TumblingWindowCountBolt(0, window_s=1.0, forward=True)
        context = _context(clock)
        bolt.process(make_tuple(("a", 1), 0), context)
        assert context._drain() == [("a", 1)]

    def test_state_merges_on_migration(self):
        bolt = TumblingWindowCountBolt(0, window_s=1.0)
        bolt.state["a"] = 3
        bolt.install_state({"a": 2, "b": 1})
        assert bolt.state == {"a": 5, "b": 1}


class TestTopK:
    def test_validation(self):
        with pytest.raises(ValueError):
            TopKBolt(k=0)
        with pytest.raises(ValueError):
            TopKBolt(window_s=0)

    def test_per_group_rankings(self):
        clock = _Clock()
        bolt = TopKBolt(group=0, item=1, k=2, window_s=10.0)
        context = _context(clock)
        stream = [
            ("asia", "#java"), ("asia", "#java"), ("asia", "#ruby"),
            ("oceania", "#python"),
        ]
        for values in stream:
            bolt.process(make_tuple(values, 0), context)
        assert bolt.top("asia") == [("#java", 2), ("#ruby", 1)]
        assert bolt.top("oceania") == [("#python", 1)]
        assert bolt.top("nowhere") == []

    def test_flush_emits_rankings_and_resets(self):
        clock = _Clock()
        bolt = TopKBolt(group=0, item=1, k=1, window_s=1.0)
        context = _context(clock)
        bolt.process(make_tuple(("asia", "#java"), 0), context)
        clock.now = 2.0
        bolt.process(make_tuple(("asia", "#ruby"), 0), context)
        emitted = context._drain()
        assert emitted == [(0.0, "asia", (("#java", 1),))]
        assert bolt.top("asia") == [("#ruby", 1)]

    def test_sketch_state_merges_on_migration(self):
        bolt = TopKBolt(group=0, item=1, k=2, capacity=16)
        clock = _Clock()
        context = _context(clock)
        bolt.process(make_tuple(("asia", "#java"), 0), context)
        peer = TopKBolt(group=0, item=1, k=2, capacity=16)
        peer.process(make_tuple(("asia", "#java"), 0), _context(clock))
        migrated = peer.extract_state(["asia"])
        bolt.install_state(migrated)
        assert bolt.top("asia")[0] == ("#java", 2)

    def test_runs_in_topology(self):
        def source(ctx):
            import random

            rng = random.Random(0)
            regions = ["asia", "europe"]
            tags = ["#a", "#b", "#c"]
            while True:
                yield (rng.choice(regions), rng.choice(tags))

        builder = TopologyBuilder()
        builder.spout("S", lambda: IteratorSpout(source), parallelism=2)
        builder.bolt(
            "trending",
            lambda: TopKBolt(group=0, item=1, k=2, window_s=0.02),
            parallelism=2,
            inputs={"S": FieldsGrouping(0)},
        )
        builder.bolt(
            "sink",
            lambda: CountBolt(1, forward=False),
            parallelism=2,
            inputs={"trending": FieldsGrouping(1)},
        )
        result = run(
            builder.build(),
            RunConfig(duration_s=0.1, warmup_s=0.02, num_servers=2),
        )
        # Rankings flow downstream: one emission per (window, group).
        assert result.throughput > 0


class TestLatency:
    def test_latency_stats_basics(self):
        stats = LatencyStats(reservoir_size=100)
        for value in [1.0, 2.0, 3.0, 4.0]:
            stats.record(value)
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.max == 4.0
        assert stats.percentile(0.5) == 2.0
        assert stats.percentile(1.0) == 4.0
        assert stats.percentile(0.0) == 1.0

    def test_latency_stats_validation(self):
        with pytest.raises(ValueError):
            LatencyStats(reservoir_size=0)
        with pytest.raises(ValueError):
            LatencyStats().percentile(1.5)

    def test_empty_stats(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.percentile(0.9) == 0.0

    def test_reservoir_stays_bounded(self):
        stats = LatencyStats(reservoir_size=10)
        for i in range(1000):
            stats.record(float(i))
        assert stats.count == 1000
        assert len(stats._reservoir) == 10
        # Reservoir values span the stream, not just its head.
        assert max(stats._reservoir) > 100

    def test_reset(self):
        stats = LatencyStats()
        stats.record(1.0)
        stats.reset()
        assert stats.count == 0
        assert stats.max == 0.0

    def test_run_reports_pipeline_latency(self):
        def source(ctx):
            while True:
                yield (0, 0)

        builder = TopologyBuilder()
        builder.spout("S", lambda: IteratorSpout(source), parallelism=1)
        builder.bolt(
            "A", lambda: CountBolt(0, forward=True), parallelism=1,
            inputs={"S": FieldsGrouping(0)},
        )
        builder.bolt(
            "B", lambda: CountBolt(1, forward=False), parallelism=1,
            inputs={"A": FieldsGrouping(1)},
        )
        result = run(
            builder.build(),
            RunConfig(duration_s=0.1, warmup_s=0.02, num_servers=1,
                      max_pending=4),
        )
        # With a tiny pending window there is no queueing: latency is a
        # few service times, far below a millisecond.
        assert 0 < result.latency_p50 < 1e-3
        assert result.latency_p50 <= result.latency_p99 <= result.latency_max
        assert result.latency_mean > 2 * 9e-6  # at least two bolt services

    def test_remote_hops_increase_latency(self):
        def source(ctx):
            i = ctx.instance_index
            while True:
                yield (i, i)

        from repro.engine import CustomGrouping

        def build(offset):
            builder = TopologyBuilder()
            builder.spout("S", lambda: IteratorSpout(source), parallelism=2)
            builder.bolt(
                "A", lambda: CountBolt(0, forward=True), parallelism=2,
                inputs={"S": CustomGrouping(
                    lambda v, c: (v[0] + offset) % 2
                )},
            )
            builder.bolt(
                "B", lambda: CountBolt(1, forward=False), parallelism=2,
                inputs={"A": CustomGrouping(
                    lambda v, c: (v[1] + offset) % 2
                )},
            )
            return builder.build()

        config = RunConfig(
            duration_s=0.1, warmup_s=0.02, num_servers=2, max_pending=4
        )
        local = run(build(0), config)
        remote = run(build(1), config)
        assert remote.latency_p50 > local.latency_p50
