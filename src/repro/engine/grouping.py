"""Stream routing policies (Section 2.2 of the paper).

A *grouping* is the declarative policy attached to a stream in the
topology; at deployment it is instantiated into one *router* per source
instance. Routers map an emitted tuple's values to destination instance
indices.

Implemented groupings:

- **shuffle** — round-robin over all destination instances;
- **local-or-shuffle** — round-robin over same-server instances when
  any exist, else shuffle;
- **fields** — hash of a key extracted from the tuple (the Storm
  default for stateful bolts);
- **table fields** — fields grouping driven by an explicit routing
  table with hash fallback: the mechanism the paper's manager updates
  online;
- **global**, **broadcast** — classic utilities;
- **partial key** — "power of d choices" key splitting (Nasir et al.,
  ICDE'15, generalized to d ≥ 2 candidates). A first-class mode: pair
  it with a downstream merge stage
  (:class:`~repro.engine.operators.PartialCountBolt` →
  :class:`~repro.engine.operators.SumBolt`) and split keys stay exact
  for stateful counting;
- **hybrid table fields** — table routing for the correlated tail,
  d-choices splitting for the heavy hitters named in the table's
  split set (the skew-resilient mode the manager drives online);
- **custom** — arbitrary routing function (used by the worst-case
  policy of Section 4.2).

Every ``build_router`` validates that the stream has at least one
destination instance and raises :class:`~repro.errors.RoutingError`
naming the stream otherwise (the routers' modular arithmetic would
surface it later as a bare ``ZeroDivisionError`` mid-run).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import RoutingError

KeySpec = Union[int, Callable[[tuple], Any]]


def normalize_key_fn(key: KeySpec) -> Callable[[tuple], Any]:
    """Turn a field index or callable into a key extraction function."""
    if callable(key):
        return key
    if isinstance(key, int):
        index = key

        def extract(values: tuple) -> Any:
            return values[index]

        return extract
    raise RoutingError(f"key must be a field index or callable, got {key!r}")


_MASK64 = (1 << 64) - 1

#: Key types safe to use as memo keys. Scalars only: values of
#: *different* scalar types are disambiguated by including the type in
#: the memo key (``1``, ``1.0`` and ``True`` are equal as dict keys but
#: have different reprs, hence different stable hashes). Containers are
#: excluded because their *elements* can collide the same way
#: (``(1,)`` vs ``(True,)``) without the outer type telling them apart.
_SCALAR_KEY_TYPES = frozenset((str, bytes, int, float, bool, type(None)))

#: Hot-key interning for :func:`stable_hash`: the repr/CRC/splitmix
#: pipeline runs once per distinct (key, seed), not once per tuple.
#: Bounded by wholesale clearing — with realistic key cardinalities the
#: memo never fills; if it does, dropping it costs one recomputation
#: per key and keeps results identical either way.
_HASH_MEMO: dict = {}
_HASH_MEMO_MAX = 1 << 17


def _stable_hash_uncached(key: Any, seed: int) -> int:
    data = repr(key).encode("utf-8", errors="backslashreplace")
    x = (zlib.crc32(data) ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def stable_hash(key: Any, seed: int = 0) -> int:
    """Deterministic, process-independent hash of a key.

    Python's builtin ``hash`` is randomized per process for strings.
    CRC32 alone is *linear* (two key families differing by a constant
    byte pattern would land at a constant XOR offset — catastrophically
    correlating the owners of paired keys), so a splitmix64 finalizer
    mixes the CRC with the seed non-linearly.

    Results for scalar keys are interned in a bounded module-level
    memo (the repr/encode/CRC/mix pipeline is the single hottest data-
    plane cost); the memo is transparent — cached and uncached calls
    return identical values.
    """
    if key.__class__ in _SCALAR_KEY_TYPES:
        memo_key = (key.__class__, key, seed)
        cached = _HASH_MEMO.get(memo_key)
        if cached is not None:
            return cached
        value = _stable_hash_uncached(key, seed)
        if len(_HASH_MEMO) >= _HASH_MEMO_MAX:
            _HASH_MEMO.clear()
        _HASH_MEMO[memo_key] = value
        return value
    return _stable_hash_uncached(key, seed)


def clear_stable_hash_memo() -> None:
    """Drop the :func:`stable_hash` interning memo (test isolation)."""
    _HASH_MEMO.clear()


#: Default capacity of the per-router key→route caches; deployments
#: size them via ``CostModel.router_cache_size``.
DEFAULT_ROUTER_CACHE_SIZE = 4096


class _RouteCache:
    """Bounded LRU for key→route memoization.

    Values are treated as immutable by callers (routers hand the cached
    route list straight to the emission planner, which only iterates).
    A hit reinserts the entry at the MRU end of the underlying dict, so
    eviction drops the least recently *used* key, not the oldest.
    """

    __slots__ = ("_data", "_capacity")

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._data: dict = {}

    def get(self, key):
        data = self._data
        value = data.get(key)
        if value is not None:
            del data[key]
            data[key] = value
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self._capacity:
            del data[next(iter(data))]
        data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class RouterContext:
    """Everything a router may need about its edge at deployment time."""

    __slots__ = (
        "stream_name",
        "src_instance",
        "src_server",
        "dst_placements",
        "seed",
        "cache_size",
    )

    def __init__(
        self,
        stream_name: str,
        src_instance: int,
        src_server: int,
        dst_placements: Sequence[int],
        seed: int,
        cache_size: int = DEFAULT_ROUTER_CACHE_SIZE,
    ) -> None:
        self.stream_name = stream_name
        self.src_instance = src_instance
        self.src_server = src_server
        self.dst_placements = list(dst_placements)
        self.seed = seed
        self.cache_size = cache_size


class Router:
    """Runtime routing decision for one (source instance, stream)."""

    def select(self, values: tuple) -> List[int]:
        """Destination instance indices for an emission."""
        raise NotImplementedError


class Grouping:
    """Declarative routing policy; builds one router per source POI."""

    def build_router(self, context: RouterContext) -> Router:
        raise NotImplementedError


def _require_destinations(context: RouterContext) -> int:
    """The stream's destination count, validated to be >= 1."""
    n = len(context.dst_placements)
    if n < 1:
        raise RoutingError(
            f"stream {context.stream_name!r} has no destination "
            f"instances; a router needs at least one"
        )
    return n


# ----------------------------------------------------------------------
# Shuffle
# ----------------------------------------------------------------------


class _ShuffleRouter(Router):
    def __init__(self, num_destinations: int, start: int) -> None:
        self._n = num_destinations
        self._next = start % num_destinations

    def select(self, values: tuple) -> List[int]:
        dst = self._next
        self._next = (dst + 1) % self._n
        return [dst]

    def resize(self, num_destinations: int) -> None:
        """Adopt a new destination count (rescale seam)."""
        if num_destinations < 1:
            raise RoutingError(
                f"num_destinations must be >= 1, got {num_destinations}"
            )
        self._n = num_destinations
        self._next %= num_destinations


class ShuffleGrouping(Grouping):
    """Round-robin over destination instances (stateless POs only)."""

    def build_router(self, context: RouterContext) -> Router:
        n = _require_destinations(context)
        return _ShuffleRouter(n, start=context.src_instance)


# ----------------------------------------------------------------------
# Local-or-shuffle
# ----------------------------------------------------------------------


class _LocalOrShuffleRouter(Router):
    def __init__(self, local: List[int], all_dsts: int, start: int) -> None:
        self._local = local
        self._n = all_dsts
        self._next = start

    def select(self, values: tuple) -> List[int]:
        if self._local:
            dst = self._local[self._next % len(self._local)]
        else:
            dst = self._next % self._n
        self._next += 1
        return [dst]


class LocalOrShuffleGrouping(Grouping):
    """Prefer a destination instance on the sender's server."""

    def build_router(self, context: RouterContext) -> Router:
        _require_destinations(context)
        local = [
            i
            for i, server in enumerate(context.dst_placements)
            if server == context.src_server
        ]
        return _LocalOrShuffleRouter(
            local, len(context.dst_placements), start=context.src_instance
        )


# ----------------------------------------------------------------------
# Fields grouping (hash-based)
# ----------------------------------------------------------------------


class _HashFieldsRouter(Router):
    """Hash fields router with a bounded key→route LRU: the hash/mod
    and the route-list allocation run once per distinct hot key. Pure
    function of the key, so the cache never needs invalidation."""

    def __init__(
        self,
        key_fn,
        num_destinations: int,
        seed: int,
        cache_size: int = DEFAULT_ROUTER_CACHE_SIZE,
    ) -> None:
        self._key_fn = key_fn
        self._n = num_destinations
        self._seed = seed
        self._cache = _RouteCache(cache_size) if cache_size > 0 else None

    def select(self, values: tuple) -> List[int]:
        key = self._key_fn(values)
        cache = self._cache
        if cache is not None and key.__class__ in _SCALAR_KEY_TYPES:
            memo_key = (key.__class__, key)
            route = cache.get(memo_key)
            if route is None:
                route = [stable_hash(key, self._seed) % self._n]
                cache.put(memo_key, route)
            return route
        return [stable_hash(key, self._seed) % self._n]

    def resize(self, num_destinations: int) -> None:
        """Adopt a new destination count and drop the route cache — a
        cached route under the old modulus would silently keep the
        pre-rescale key placement (rescale seam)."""
        if num_destinations < 1:
            raise RoutingError(
                f"num_destinations must be >= 1, got {num_destinations}"
            )
        self._n = num_destinations
        if self._cache is not None:
            self._cache.clear()


class FieldsGrouping(Grouping):
    """Key-based deterministic routing: all tuples sharing a key reach
    the same destination instance.

    Parameters
    ----------
    key:
        A field index or ``callable(values) -> key``.
    """

    def __init__(self, key: KeySpec) -> None:
        self.key_fn = normalize_key_fn(key)
        #: the raw key spec (field index or callable) — batch backends
        #: use index equality to prove two key functions identical
        self.key_spec = key

    def build_router(self, context: RouterContext) -> Router:
        return _HashFieldsRouter(
            self.key_fn,
            _require_destinations(context),
            context.seed,
            cache_size=context.cache_size,
        )


# ----------------------------------------------------------------------
# Fields grouping driven by an explicit routing table
# ----------------------------------------------------------------------


class TableRouter(Router):
    """Fields router with a swappable key→instance table.

    The table is any object with ``lookup(key) -> Optional[int]``;
    unknown keys fall back to hash routing, as in Section 3.3 of the
    paper. ``table_hits`` / ``hash_fallbacks`` count the two outcomes —
    the explicit-vs-fallback split the telemetry layer exports (a high
    fallback share after a reconfiguration means the routed key set no
    longer covers the traffic, the Fig. 12 unseen-keys effect).
    """

    def __init__(
        self,
        key_fn,
        num_destinations: int,
        seed: int,
        table,
        cache_size: int = DEFAULT_ROUTER_CACHE_SIZE,
    ) -> None:
        self._key_fn = key_fn
        self._n = num_destinations
        self._seed = seed
        self._table = table
        self.table_hits = 0
        self.hash_fallbacks = 0
        #: key→(route, table_hit) LRU; MUST be dropped whenever the
        #: table changes — a stale cached destination would silently
        #: undo a reconfiguration (see DESIGN.md §10 invalidation rules)
        self._cache = _RouteCache(cache_size) if cache_size > 0 else None

    @property
    def table(self):
        return self._table

    def update_table(self, table) -> None:
        """Hot-swap the routing table (reconfiguration step 5). Drops
        the route cache: every key re-resolves against the new table."""
        self._table = table
        if self._cache is not None:
            self._cache.clear()

    @property
    def num_destinations(self) -> int:
        return self._n

    def resize(self, num_destinations: int, table) -> None:
        """Atomically swap the destination count *and* the table (a
        rescale round changes both; swapping them separately would let
        a tuple route through a (new table, old n) hybrid and hit the
        range check in :meth:`_route`)."""
        if num_destinations < 1:
            raise RoutingError(
                f"num_destinations must be >= 1, got {num_destinations}"
            )
        self._n = num_destinations
        self._table = table
        if self._cache is not None:
            self._cache.clear()

    def _route(self, key) -> tuple:
        """Uncached decision: (route list, came-from-table flag)."""
        if self._table is not None:
            instance = self._table.lookup(key)
            if instance is not None:
                if not 0 <= instance < self._n:
                    raise RoutingError(
                        f"routing table maps {key!r} to instance {instance}, "
                        f"but stream has {self._n} destinations"
                    )
                return ([instance], True)
        return ([stable_hash(key, self._seed) % self._n], False)

    def select(self, values: tuple) -> List[int]:
        return self._select_for_key(self._key_fn(values))

    def _select_for_key(self, key) -> List[int]:
        cache = self._cache
        if cache is not None and key.__class__ in _SCALAR_KEY_TYPES:
            memo_key = (key.__class__, key)
            entry = cache.get(memo_key)
            if entry is None:
                entry = self._route(key)
                cache.put(memo_key, entry)
            # Count per select, not per cache fill: the hit/fallback
            # split the telemetry layer exports stays per-tuple exact.
            if entry[1]:
                self.table_hits += 1
            else:
                self.hash_fallbacks += 1
            return entry[0]
        route, table_hit = self._route(key)
        if table_hit:
            self.table_hits += 1
        else:
            self.hash_fallbacks += 1
        return route


class TableFieldsGrouping(Grouping):
    """Fields grouping with an explicit (optional, swappable) table."""

    def __init__(self, key: KeySpec, table=None) -> None:
        self.key_fn = normalize_key_fn(key)
        self.key_spec = key
        self.initial_table = table

    def build_router(self, context: RouterContext) -> TableRouter:
        return TableRouter(
            self.key_fn,
            _require_destinations(context),
            context.seed,
            self.initial_table,
            cache_size=context.cache_size,
        )


# ----------------------------------------------------------------------
# Hybrid: locality tables for the tail, d-choices for heavy hitters
# ----------------------------------------------------------------------


class HybridTableRouter(TableRouter):
    """Table router that splits heavy hitters across a small POI set.

    Tail keys route exactly like :class:`TableRouter` (explicit table
    entry, hash fallback) and stay LRU-cached. Keys named in the
    table's *split set* (see
    :meth:`repro.core.routing_table.RoutingTable.split`) are instead
    sent to the least-loaded member of their split tuple — a
    load-dependent decision that is never cached. Per-destination load
    is tracked over *all* selects, so a split key's choice accounts
    for the tail traffic each member already carries.

    The split set arrives inside the table payload, so the cache
    invalidation rules of ``update_table``/``resize`` cover it: any
    table swap drops the route cache and resets the load counters.
    """

    def __init__(
        self,
        key_fn,
        num_destinations: int,
        seed: int,
        table,
        cache_size: int = DEFAULT_ROUTER_CACHE_SIZE,
    ) -> None:
        super().__init__(
            key_fn, num_destinations, seed, table, cache_size=cache_size
        )
        self._sent = [0] * num_destinations
        #: bound ``table.split`` when the table carries one (plain
        #: lookup-only table objects degrade to pure table routing)
        self._split_fn = getattr(table, "split", None)
        #: selects resolved through the split set (telemetry)
        self.split_routes = 0

    @property
    def sent_counts(self) -> List[int]:
        """Per-destination send counts (copy, for tests/telemetry)."""
        return list(self._sent)

    def update_table(self, table) -> None:
        super().update_table(table)
        self._split_fn = getattr(table, "split", None)
        self._sent = [0] * self._n

    def resize(self, num_destinations: int, table) -> None:
        super().resize(num_destinations, table)
        self._split_fn = getattr(table, "split", None)
        self._sent = [0] * self._n

    def select(self, values: tuple) -> List[int]:
        key = self._key_fn(values)
        split_fn = self._split_fn
        if split_fn is not None:
            members = split_fn(key)
            if members:
                sent = self._sent
                dst = min(
                    (m for m in members if 0 <= m < self._n),
                    key=sent.__getitem__,
                    default=None,
                )
                if dst is None:
                    raise RoutingError(
                        f"split set maps {key!r} to {members}, all "
                        f"outside the stream's {self._n} destinations"
                    )
                sent[dst] += 1
                self.split_routes += 1
                return [dst]
        route = self._select_for_key(key)
        self._sent[route[0]] += 1
        return route


class HybridTableFieldsGrouping(TableFieldsGrouping):
    """Table fields grouping whose router honors the table's split
    set: locality-aware routing for the tail, d-choices splitting for
    the heavy hitters the manager marks each round."""

    def build_router(self, context: RouterContext) -> HybridTableRouter:
        return HybridTableRouter(
            self.key_fn,
            _require_destinations(context),
            context.seed,
            self.initial_table,
            cache_size=context.cache_size,
        )


# ----------------------------------------------------------------------
# Global / broadcast
# ----------------------------------------------------------------------


class _ConstantRouter(Router):
    def __init__(self, targets: List[int]) -> None:
        self._targets = targets

    def select(self, values: tuple) -> List[int]:
        return list(self._targets)


class GlobalGrouping(Grouping):
    """Everything goes to instance 0."""

    def build_router(self, context: RouterContext) -> Router:
        _require_destinations(context)
        return _ConstantRouter([0])


class BroadcastGrouping(Grouping):
    """Every emission is replicated to every destination instance."""

    def build_router(self, context: RouterContext) -> Router:
        return _ConstantRouter(list(range(_require_destinations(context))))


# ----------------------------------------------------------------------
# Partial key grouping (power of d choices)
# ----------------------------------------------------------------------

#: seed stride separating the d candidate hash functions
_CANDIDATE_SEED_STRIDE = 0x9E3779B9


def candidate_instances(
    key: Any, seed: int, num_destinations: int, d: int
) -> Tuple[int, ...]:
    """The ``d`` candidate destinations of ``key`` (one per derived
    hash function). Candidates may collide on small clusters — the
    split is then narrower than ``d``, never wrong."""
    return tuple(
        stable_hash(key, seed + i * _CANDIDATE_SEED_STRIDE)
        % num_destinations
        for i in range(d)
    )


class _DChoicesRouter(Router):
    """d-choices router caching each key's *candidate tuple* only —
    the final pick depends on the live per-destination send counts, so
    it is always recomputed against the cheapest candidate."""

    def __init__(
        self,
        key_fn,
        num_destinations: int,
        seed: int,
        d: int = 2,
        cache_size: int = DEFAULT_ROUTER_CACHE_SIZE,
    ) -> None:
        self._key_fn = key_fn
        self._n = num_destinations
        self._seed = seed
        self._d = d
        self._sent = [0] * num_destinations
        self._cache = _RouteCache(cache_size) if cache_size > 0 else None

    @property
    def sent_counts(self) -> List[int]:
        """Per-destination send counts (copy, for tests/telemetry)."""
        return list(self._sent)

    def _candidates(self, key) -> Tuple[int, ...]:
        return candidate_instances(key, self._seed, self._n, self._d)

    def select(self, values: tuple) -> List[int]:
        key = self._key_fn(values)
        cache = self._cache
        if cache is not None and key.__class__ in _SCALAR_KEY_TYPES:
            memo_key = (key.__class__, key)
            candidates = cache.get(memo_key)
            if candidates is None:
                candidates = self._candidates(key)
                cache.put(memo_key, candidates)
        else:
            candidates = self._candidates(key)
        sent = self._sent
        dst = min(candidates, key=sent.__getitem__)
        sent[dst] += 1
        return [dst]

    def reset_sent(self) -> None:
        """Zero the per-destination send counts. Called on
        reconfiguration so stale pre-round load does not bias the
        post-round choices (the counts describe traffic that no longer
        predicts the new placement's load)."""
        self._sent = [0] * self._n

    def resize(self, num_destinations: int) -> None:
        """Adopt a new destination count: drop the candidate cache
        (candidates are taken modulo the old width) and re-dimension
        the send counters (rescale seam)."""
        if num_destinations < 1:
            raise RoutingError(
                f"num_destinations must be >= 1, got {num_destinations}"
            )
        self._n = num_destinations
        self.reset_sent()
        if self._cache is not None:
            self._cache.clear()


class PartialKeyGrouping(Grouping):
    """"Power of d choices" key routing (Nasir et al., ICDE'15;
    d = 2 is the paper's partial key grouping).

    Splits each key over ``d`` candidate instances, picking the least
    loaded one locally — far better load balance than hash fields
    grouping under skew. Split keys hold *partial* aggregates per
    instance; pair the stage with a downstream merge
    (:class:`~repro.engine.operators.PartialCountBolt` feeding a
    :class:`~repro.engine.operators.SumBolt` over a fields-grouped
    stream) and stateful counting stays exact.
    """

    def __init__(self, key: KeySpec, d: int = 2) -> None:
        if d < 2:
            raise RoutingError(f"d must be >= 2, got {d}")
        self.key_fn = normalize_key_fn(key)
        self.key_spec = key
        self.d = d

    def build_router(self, context: RouterContext) -> Router:
        return _DChoicesRouter(
            self.key_fn,
            _require_destinations(context),
            context.seed,
            d=self.d,
            cache_size=context.cache_size,
        )


# ----------------------------------------------------------------------
# Custom
# ----------------------------------------------------------------------


class _CustomRouter(Router):
    def __init__(self, fn, context: RouterContext) -> None:
        self._fn = fn
        self._context = context

    def select(self, values: tuple) -> List[int]:
        result = self._fn(values, self._context)
        if isinstance(result, int):
            return [result]
        return list(result)


class CustomGrouping(Grouping):
    """Route with an arbitrary function ``fn(values, context) -> index``
    (or a list of indices). Used for the paper's worst-case policy."""

    def __init__(self, fn: Callable[[tuple, RouterContext], Any]) -> None:
        self.fn = fn

    def build_router(self, context: RouterContext) -> Router:
        _require_destinations(context)
        return _CustomRouter(self.fn, context)
