"""Tests for the cost model and small engine utilities."""

import pytest

from repro.engine import DEFAULT_COSTS, CostModel
from repro.engine.cluster import GIGABIT


def test_default_costs_sanity():
    costs = DEFAULT_COSTS
    # Calibration: one bolt stage sustains ~111 Ktuples/s per server.
    assert 1.0 / costs.bolt_service_s == pytest.approx(111_111, rel=0.01)
    assert costs.spout_service_s < costs.bolt_service_s
    assert costs.tuple_header_bytes > 0


def test_ser_deser_costs_scale_with_size():
    costs = DEFAULT_COSTS
    small = costs.ser_cost(100)
    large = costs.ser_cost(20000)
    assert large > small
    assert large - small == pytest.approx(19900 * costs.ser_per_byte_s)
    assert costs.deser_cost(0) == costs.deser_fixed_s


def test_with_overrides_returns_new_model():
    costs = DEFAULT_COSTS
    tweaked = costs.with_overrides(bolt_service_s=1e-6)
    assert tweaked.bolt_service_s == 1e-6
    assert costs.bolt_service_s == 9e-6  # original untouched
    assert isinstance(tweaked, CostModel)
    assert tweaked.ser_fixed_s == costs.ser_fixed_s


def test_gigabit_constant():
    assert GIGABIT == 1e9 / 8


def test_cost_model_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COSTS.bolt_service_s = 1.0  # type: ignore[misc]


def test_errors_hierarchy():
    from repro import errors

    subclasses = [
        errors.TopologyError,
        errors.DeploymentError,
        errors.SimulationError,
        errors.PartitioningError,
        errors.RoutingError,
        errors.ReconfigurationError,
        errors.WorkloadError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise cls("boom")


def test_public_api_imports():
    """Everything advertised in __all__ resolves."""
    import repro
    import repro.analysis as analysis
    import repro.core as core
    import repro.engine as engine
    import repro.partitioning as partitioning
    import repro.spacesaving as spacesaving
    import repro.workloads as workloads

    for module in (
        repro, analysis, core, engine, partitioning, spacesaving, workloads
    ):
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, (module, name)
    assert repro.__version__
