"""Operator (PO) base classes and common implementations.

User logic subclasses :class:`Spout` or :class:`Bolt`; stateful bolts
subclass :class:`StatefulBolt`, which adds the keyed-state API the
migration protocol uses. One operator *object* is created per instance
(POI) by the factory declared in the topology.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional


class OperatorContext:
    """Execution context handed to operators.

    Provides ``emit`` plus identity and clock information. The executor
    collects emissions synchronously during ``process``/``next_tuple``
    and dispatches them once the modeled service time has elapsed.
    """

    __slots__ = (
        "operator_name",
        "instance_index",
        "num_instances",
        "server_index",
        "_now_fn",
        "_emissions",
    )

    def __init__(
        self,
        operator_name: str,
        instance_index: int,
        num_instances: int,
        server_index: int,
        now_fn: Callable[[], float],
    ) -> None:
        self.operator_name = operator_name
        self.instance_index = instance_index
        self.num_instances = num_instances
        self.server_index = server_index
        self._now_fn = now_fn
        self._emissions: List[tuple] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now_fn()

    def emit(self, values: Iterable[Any]) -> None:
        """Emit a tuple downstream (on every output stream)."""
        self._emissions.append(tuple(values))

    def _drain(self) -> List[tuple]:
        emissions = self._emissions
        self._emissions = []
        return emissions


class Operator:
    """Base for all operators."""

    def open(self, context: OperatorContext) -> None:
        """Called once when the instance is deployed."""

    def close(self) -> None:
        """Called when the simulation ends."""


class Spout(Operator):
    """A stream source.

    ``next_tuple`` is invoked whenever the spout has spare pending
    credit; it should call ``context.emit`` zero or more times and
    return True if it did any work. Returning False with
    ``finished == False`` makes the executor retry after a short idle
    delay; with ``finished == True`` the spout stops for good.
    """

    @property
    def finished(self) -> bool:
        return False

    def next_tuple(self, context: OperatorContext) -> bool:
        raise NotImplementedError


class Bolt(Operator):
    """A processing operator."""

    def process(self, tup, context: OperatorContext) -> None:
        raise NotImplementedError


class StatefulBolt(Bolt):
    """A bolt with keyed state, migratable by the reconfiguration
    protocol (Section 3.4 of the paper).

    State is a plain ``dict`` key → value. Subclasses use
    :meth:`state_for` / direct dict access; the protocol uses
    :meth:`extract_state` and :meth:`install_state`.
    """

    def __init__(self) -> None:
        self.state: Dict[Hashable, Any] = {}

    def state_for(self, key: Hashable, default_factory=None) -> Any:
        """Get (creating if needed) the state entry for ``key``."""
        if key not in self.state and default_factory is not None:
            self.state[key] = default_factory()
        return self.state.get(key)

    # -- migration API --------------------------------------------------

    def extract_state(self, keys: Iterable[Hashable]) -> Dict[Hashable, Any]:
        """Remove and return the state of ``keys`` (missing keys are
        skipped: a key may have been assigned but never seen)."""
        extracted: Dict[Hashable, Any] = {}
        for key in keys:
            if key in self.state:
                extracted[key] = self.state.pop(key)
        return extracted

    def install_state(self, entries: Dict[Hashable, Any]) -> None:
        """Install migrated state received from a peer instance.

        Entries are merged with :meth:`merge_state_entry` when a key is
        already present (possible when hash fallback and table routing
        overlap transiently)."""
        for key, value in entries.items():
            if key in self.state:
                self.state[key] = self.merge_state_entry(
                    key, self.state[key], value
                )
            else:
                self.state[key] = value

    def merge_state_entry(self, key: Hashable, mine: Any, theirs: Any) -> Any:
        """How to reconcile two state entries for the same key.

        Default keeps the local entry; counting bolts override this to
        add the two counters.
        """
        return mine


class CountBolt(StatefulBolt):
    """Counts occurrences of a key field, the paper's evaluation bolt.

    Parameters
    ----------
    key:
        Field index (or callable) identifying the counted key.
    forward:
        When True, the input tuple's values are re-emitted downstream
        (PO ``A`` in the evaluation); sinks use False (PO ``B``).
    """

    def __init__(self, key: int = 0, forward: bool = True) -> None:
        super().__init__()
        if callable(key):
            self._key_fn = key
        else:
            index = key
            self._key_fn = lambda values: values[index]
        #: the raw key spec (index or callable) — batch backends use
        #: index equality to match the count key to a routing key
        self.key_spec = key
        self._forward = forward
        self.processed = 0

    @property
    def forwards(self) -> bool:
        """Whether processed tuples are re-emitted downstream."""
        return self._forward

    def key_of(self, values: tuple):
        """The counted key of one value tuple."""
        return self._key_fn(values)

    def process(self, tup, context: OperatorContext) -> None:
        key = self._key_fn(tup.values)
        self.state[key] = self.state.get(key, 0) + 1
        self.processed += 1
        if self._forward:
            context.emit(tup.values)

    def merge_state_entry(self, key, mine, theirs):
        return mine + theirs

    def count(self, key: Hashable) -> int:
        return self.state.get(key, 0)


class PartialCountBolt(StatefulBolt):
    """Per-instance partial counter for split-key (PKG/hybrid) streams.

    Upstream routing may spread one key over several instances, so the
    local counter is only a *partial* aggregate. Every processed tuple
    emits ``(key, delta)`` downstream; route that stream with plain
    fields grouping into a :class:`SumBolt` and the per-key totals stay
    exact regardless of how the key was split.

    Parameters
    ----------
    key:
        Field index (or callable) identifying the counted key.
    emit_every:
        Emit the accumulated delta every N observations of a key
        (1 = one delta per tuple, exact at every instant; larger values
        batch deltas and trade staleness for traffic).
    """

    def __init__(self, key: int = 0, emit_every: int = 1) -> None:
        super().__init__()
        if emit_every < 1:
            raise ValueError(f"emit_every must be >= 1, got {emit_every}")
        if callable(key):
            self._key_fn = key
        else:
            index = key
            self._key_fn = lambda values: values[index]
        self._emit_every = emit_every
        self._pending: Dict[Hashable, int] = {}
        self.processed = 0

    def process(self, tup, context: OperatorContext) -> None:
        key = self._key_fn(tup.values)
        self.state[key] = self.state.get(key, 0) + 1
        self.processed += 1
        pending = self._pending.get(key, 0) + 1
        if pending >= self._emit_every:
            context.emit((key, pending))
            self._pending.pop(key, None)
        else:
            self._pending[key] = pending

    def merge_state_entry(self, key, mine, theirs):
        return mine + theirs

    def count(self, key: Hashable) -> int:
        """Local partial count for ``key`` (NOT the global total)."""
        return self.state.get(key, 0)


class SumBolt(StatefulBolt):
    """Merge stage summing ``(key, delta)`` tuples into exact totals.

    The downstream half of the PKG/hybrid split-key pattern: feed it
    the :class:`PartialCountBolt` output over a fields-grouped (or
    table-grouped) stream keyed on field 0, and ``total(key)`` is the
    exact global count even though upstream partials live on several
    instances.
    """

    def __init__(
        self, key: int = 0, value: int = 1, forward: bool = False
    ) -> None:
        super().__init__()
        self._key_index = key
        self._value_index = value
        self._forward = forward
        self.processed = 0

    def process(self, tup, context: OperatorContext) -> None:
        key = tup.values[self._key_index]
        delta = tup.values[self._value_index]
        self.state[key] = self.state.get(key, 0) + delta
        self.processed += 1
        if self._forward:
            context.emit(tup.values)

    def merge_state_entry(self, key, mine, theirs):
        return mine + theirs

    def total(self, key: Hashable) -> int:
        return self.state.get(key, 0)


class PassThroughBolt(Bolt):
    """Stateless identity bolt (used to model stateless POs)."""

    def __init__(self, transform: Optional[Callable[[tuple], tuple]] = None):
        self._transform = transform

    def process(self, tup, context: OperatorContext) -> None:
        values = tup.values
        if self._transform is not None:
            values = self._transform(values)
        context.emit(values)


class FunctionBolt(Bolt):
    """Stateless bolt applying ``fn(values) -> iterable of value-tuples``.

    Each element of the returned iterable is emitted as one tuple;
    return an empty iterable to drop the input.
    """

    def __init__(self, fn: Callable[[tuple], Iterable[tuple]]):
        self._fn = fn

    def process(self, tup, context: OperatorContext) -> None:
        for values in self._fn(tup.values):
            context.emit(values)


class IteratorSpout(Spout):
    """Spout draining a Python iterator of value-tuples.

    The iterator is created lazily at ``open`` from ``make_iterator``,
    which receives the operator context — so each instance can generate
    its own shard of the stream.
    """

    def __init__(self, make_iterator: Callable[[OperatorContext], Iterable]):
        self._make_iterator = make_iterator
        self._iterator = None
        self._finished = False
        self.emitted = 0

    def open(self, context: OperatorContext) -> None:
        self._iterator = iter(self._make_iterator(context))

    @property
    def finished(self) -> bool:
        return self._finished

    def next_tuple(self, context: OperatorContext) -> bool:
        if self._finished:
            return False
        try:
            values = next(self._iterator)
        except StopIteration:
            self._finished = True
            return False
        context.emit(values)
        self.emitted += 1
        return True
