"""Tests for the trace-driven policy evaluator."""

import pytest

from repro.analysis import TwoHopEvaluator, weekly_series
from repro.core import RoutingTable
from repro.errors import WorkloadError


def test_evaluator_validation():
    with pytest.raises(WorkloadError):
        TwoHopEvaluator(0)


def test_hash_evaluation_basics():
    evaluator = TwoHopEvaluator(4)
    pairs = [(f"k{i}", f"v{i}") for i in range(1000)]
    result = evaluator.evaluate(pairs)
    assert result.pairs == 1000
    assert result.locality == pytest.approx(0.25, abs=0.05)
    assert sum(result.loads_first) == 1000
    assert sum(result.loads_second) == 1000
    assert result.load_balance >= 1.0
    assert result.unseen_fraction == 0.0  # no tables given


def test_empty_trace():
    result = TwoHopEvaluator(2).evaluate([])
    assert result.locality == 1.0
    assert result.load_balance == 1.0
    assert result.pairs == 0


def test_tables_drive_routing():
    evaluator = TwoHopEvaluator(2)
    tables = {
        "S->A": RoutingTable({"a": 0, "b": 1}),
        "A->B": RoutingTable({"x": 0, "y": 1}),
    }
    result = evaluator.evaluate(
        [("a", "x"), ("b", "y"), ("a", "y")], tables
    )
    assert result.locality == pytest.approx(2 / 3)
    assert result.loads_first == [2, 1]
    assert result.loads_second == [1, 2]


def test_unseen_fraction_counts_table_misses():
    evaluator = TwoHopEvaluator(2)
    tables = {
        "S->A": RoutingTable({"a": 0}),
        "A->B": RoutingTable({"x": 0}),
    }
    result = evaluator.evaluate([("a", "x"), ("new", "x")], tables)
    assert result.unseen_fraction == pytest.approx(0.5)


def test_plan_tables_reaches_full_locality_on_separable_data():
    evaluator = TwoHopEvaluator(3)
    pairs = [(f"k{i % 6}", f"v{i % 6}") for i in range(600)]
    tables, predicted = evaluator.plan_tables(pairs)
    assert predicted == 1.0
    result = evaluator.evaluate(pairs, tables)
    assert result.locality == 1.0
    assert result.load_balance < 1.2


def test_plan_tables_with_spacesaving_budget():
    evaluator = TwoHopEvaluator(2)
    pairs = [("hot", "hot2")] * 500 + [
        (f"k{i}", f"v{i}") for i in range(300)
    ]
    tables, _ = evaluator.plan_tables(pairs, sketch_capacity=16)
    # The dominant pair must be covered and co-located.
    assert tables["S->A"].lookup("hot") == tables["A->B"].lookup("hot2")


def test_plan_tables_max_edges_truncates():
    evaluator = TwoHopEvaluator(2)
    pairs = []
    for i in range(40):
        pairs.extend([(f"k{i}", f"v{i}")] * (40 - i))
    tables, _ = evaluator.plan_tables(pairs, max_edges=10)
    assert len(tables["S->A"]) == 10


def test_weekly_series_modes():
    def week_pairs(week):
        # Stable, perfectly separable correlation.
        return [(f"k{i % 4}", f"v{i % 4}") for i in range(200)]

    hash_series = weekly_series(week_pairs, 3, 2, "hash-based")
    online_series = weekly_series(week_pairs, 3, 2, "online")
    offline_series = weekly_series(week_pairs, 3, 2, "offline")
    # Week 0 is always hash-routed.
    assert hash_series[0].locality == online_series[0].locality
    # From week 1 the stable workload is fully local for both policies.
    assert online_series[1].locality == 1.0
    assert offline_series[2].locality == 1.0
    assert hash_series[2].locality < 1.0


def test_weekly_series_rejects_unknown_mode():
    with pytest.raises(WorkloadError):
        weekly_series(lambda w: [], 2, 2, "magic")


def test_online_beats_offline_on_shifting_data():
    def week_pairs(week):
        # Correlations rotate every week: only online keeps up.
        return [
            (f"k{(i + week) % 4}", f"v{i % 4}") for i in range(400)
        ]

    online = weekly_series(week_pairs, 4, 2, "online")
    offline = weekly_series(week_pairs, 4, 2, "offline")
    assert online[3].locality > offline[3].locality
