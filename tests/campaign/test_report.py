"""Aggregation artifacts: JSONL, baseline documents, markdown, gate."""

import pytest

from repro.campaign.baseline import (
    diff_campaign,
    load_baseline,
    write_baseline,
)
from repro.campaign.collector import (
    REPORT_SCHEMA,
    load_jsonl,
    metrics_by_cell,
    report_header,
    write_jsonl,
)
from repro.campaign.config import CampaignConfig
from repro.campaign.executor import CellResult
from repro.campaign.report import gate_failures, render_markdown


def _config():
    return CampaignConfig(
        name="demo",
        runner="episode",
        matrix={"hybrid": [False, True]},
        seeds=[7],
        source="demo.yaml",
        axes={"locality": "higher"},
    )


def _result(cell_id, status="ok", **kwargs):
    base = dict(
        id=cell_id, runner="episode", seed=7, status=status,
        metrics={"x_per_s": 100.0, "locality": 0.8},
        fingerprint="0x00c0ffee",
    )
    base.update(kwargs)
    return CellResult(**base)


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "report.jsonl")
    results = [_result("hybrid=off,seed=7"), _result("hybrid=on,seed=7")]
    header = write_jsonl(path, _config(), results)
    assert header["schema"] == REPORT_SCHEMA
    assert header["cells"] == 2
    assert header["statuses"] == {"ok": 2}
    loaded_header, loaded = load_jsonl(path)
    assert loaded_header == header
    assert loaded == results


def test_load_jsonl_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": "something/else"}\n')
    with pytest.raises(ValueError, match="unsupported report schema"):
        load_jsonl(str(path))


def test_metrics_by_cell_omits_cells_without_metrics():
    results = [
        _result("hybrid=off,seed=7"),
        _result("hybrid=on,seed=7", status="timeout", metrics={}),
    ]
    assert list(metrics_by_cell(results)) == ["hybrid=off,seed=7"]


def test_baseline_round_trip_and_diff(tmp_path):
    path = str(tmp_path / "base.json")
    write_baseline(
        path, "demo",
        cells={
            "hybrid=off,seed=7": {"x_per_s": 100.0, "locality": 0.8},
            "hybrid=on,seed=7": {"x_per_s": 100.0},
        },
        fingerprints={"hybrid=off,seed=7": "0x00c0ffee"},
    )
    doc = load_baseline(path)
    assert doc["campaign"] == "demo"
    assert doc["fingerprints"] == {"hybrid=off,seed=7": "0x00c0ffee"}

    current = {
        # x_per_s fine; locality regressed beyond 20% under axes map
        "hybrid=off,seed=7": {"x_per_s": 95.0, "locality": 0.5},
        # a cell the baseline has never seen: informational
        "hybrid=maybe,seed=7": {"x_per_s": 1.0},
        # hybrid=on missing entirely -> gate failure
    }
    diff = diff_campaign(doc, current, extra_axes={"locality": "higher"})
    assert list(diff["regressions"]) == ["hybrid=off,seed=7"]
    assert "locality" in diff["regressions"]["hybrid=off,seed=7"][0]
    assert diff["missing_cells"] == ["hybrid=on,seed=7"]
    assert diff["new_cells"] == ["hybrid=maybe,seed=7"]
    # without the axes map, the unsuffixed metric is informational
    assert diff_campaign(doc, current)["regressions"] == {}


def test_load_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "nope"}')
    with pytest.raises(ValueError, match="unsupported baseline schema"):
        load_baseline(str(path))


def test_markdown_report_lists_cells_failures_and_diff():
    results = [
        _result("hybrid=off,seed=7"),
        _result(
            "hybrid=on,seed=7",
            status="violation",
            violations=[{"invariant": "conservation", "detail": "lost key"}],
            bundle_path="/tmp/bundle.json",
            metrics={},
        ),
    ]
    header = report_header(_config(), results)
    diff = {
        "regressions": {"hybrid=off,seed=7": ["x_per_s: 1 is 0.01x ..."]},
        "missing_cells": ["gone,seed=7"],
        "new_cells": ["fresh,seed=7"],
    }
    text = render_markdown(
        header, results, diff=diff, baseline_path="baselines/demo.json"
    )
    assert "# Campaign report: demo" in text
    assert "## Failed cells" in text
    assert "conservation" in text
    assert "repro.testing.fuzz --replay /tmp/bundle.json" in text
    assert "| cell | status | fingerprint" in text
    assert "`0x00c0ffee`" in text
    assert "### Regressions" in text
    assert "gone,seed=7" in text and "fresh,seed=7" in text


def test_markdown_without_baseline_points_at_record_flag():
    results = [_result("hybrid=off,seed=7")]
    text = render_markdown(report_header(_config(), results), results)
    assert "--record-baseline" in text


def test_gate_failures_cover_cells_regressions_and_missing():
    results = [
        _result("a,seed=7"),
        _result("b,seed=7", status="crash", metrics={}),
    ]
    diff = {
        "regressions": {"a,seed=7": ["x_per_s: down"]},
        "missing_cells": ["c,seed=7"],
        "new_cells": ["d,seed=7"],  # informational: must NOT gate
    }
    messages = gate_failures(results, diff)
    assert len(messages) == 3
    assert any("b,seed=7: crash" in m for m in messages)
    assert any("regression in a,seed=7" in m for m in messages)
    assert any("baseline cell missing" in m for m in messages)
    assert not any("d,seed=7" in m for m in messages)
    assert gate_failures([_result("a,seed=7")], None) == []
