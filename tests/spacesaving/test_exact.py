"""Tests for the exact counter (offline statistics baseline)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spacesaving import ExactCounter, SpaceSaving


def test_basic_counting():
    counter = ExactCounter()
    for item in ["a", "b", "a"]:
        counter.offer(item)
    assert counter.estimate("a").count == 2
    assert counter.estimate("a").error == 0
    assert counter.estimate("b").count == 1
    assert counter.estimate("missing") is None
    assert counter.n == 3
    assert len(counter) == 2
    assert counter.max_error() == 0


def test_weight_validation():
    counter = ExactCounter()
    with pytest.raises(ValueError):
        counter.offer("a", weight=0)


def test_top_and_guaranteed_top_agree():
    counter = ExactCounter()
    for item, weight in [("x", 3), ("y", 7), ("z", 1)]:
        counter.offer(item, weight=weight)
    assert [e.item for e in counter.top(2)] == ["y", "x"]
    assert counter.guaranteed_top(2) == counter.top(2)


def test_merge():
    left, right = ExactCounter(), ExactCounter()
    left.offer("a", weight=2)
    right.offer("a", weight=3)
    right.offer("b")
    merged = left.merge(right)
    assert merged.estimate("a").count == 5
    assert merged.estimate("b").count == 1
    assert merged.n == 6


def test_clear():
    counter = ExactCounter()
    counter.offer("a")
    counter.clear()
    assert counter.n == 0
    assert len(counter) == 0


@given(
    stream=st.lists(st.integers(min_value=0, max_value=20), max_size=200)
)
@settings(max_examples=100, deadline=None)
def test_exact_matches_counter(stream):
    counter = ExactCounter()
    for item in stream:
        counter.offer(item)
    truth = Counter(stream)
    for estimate in counter.items():
        assert estimate.count == truth[estimate.item]
        assert estimate.error == 0


@given(
    stream=st.lists(
        st.integers(min_value=0, max_value=10), min_size=1, max_size=200
    )
)
@settings(max_examples=100, deadline=None)
def test_exact_dominates_sketch_interface(stream):
    """Exact and sketch agree on ordering of genuinely separated items."""
    counter = ExactCounter()
    sketch = SpaceSaving(capacity=64)
    for item in stream:
        counter.offer(item)
        sketch.offer(item)
    # Capacity 64 > 11 distinct values, so the sketch is exact too.
    exact_top = [(e.item, e.count) for e in counter.items()]
    sketch_counts = {e.item: e.count for e in sketch.items()}
    for item, count in exact_top:
        assert sketch_counts[item] == count
