"""Load exported telemetry (JSON Lines) back into analyzable objects.

The observability layer (:mod:`repro.observability`) writes four record
types — ``span_begin``/``span_end``, ``event``, ``snapshot`` and
``metric`` — documented in DESIGN.md §8.3. This module parses a JSONL
file (or an in-memory record list) into a :class:`TelemetryLog`:
begin/end pairs become :class:`SpanRecord` trees, snapshots and metric
samples become lists, and :meth:`TelemetryLog.rounds` reconstructs the
per-reconfiguration-round timelines that
``python -m repro.analysis.report`` renders.

Unpaired spans (a run cut off mid-round) load fine: ``end`` stays
``None`` and ``duration_s`` is ``None``; the report marks them open.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Attribute keys that belong to the record envelope, not the span.
_ENVELOPE = {"type", "ts", "span", "parent", "name"}


@dataclass
class SpanRecord:
    """One reassembled begin/end span."""

    span_id: int
    name: str
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    #: begin attributes merged with end attributes (end wins)
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: point events recorded inside this span: (ts, name, attrs)
    events: List[tuple] = field(default_factory=list)
    children: List["SpanRecord"] = field(default_factory=list)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def complete(self) -> bool:
        return self.end is not None

    def child(self, name: str) -> Optional["SpanRecord"]:
        for span in self.children:
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, id={self.span_id}, "
            f"start={self.start:.6f}, "
            f"{'open' if self.end is None else f'end={self.end:.6f}'})"
        )


class TelemetryLog:
    """Every record of one exported run, indexed for analysis."""

    def __init__(self, records: Iterable[Dict[str, Any]]) -> None:
        self.records: List[Dict[str, Any]] = list(records)
        self.spans: Dict[int, SpanRecord] = {}
        self.snapshots: List[Dict[str, Any]] = []
        self.metrics: List[Dict[str, Any]] = []
        self._index()

    @classmethod
    def load(cls, path: str) -> "TelemetryLog":
        """Parse a JSONL telemetry file."""
        records = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return cls(records)

    def _index(self) -> None:
        for record in self.records:
            kind = record.get("type")
            if kind == "span_begin":
                span_id = record["span"]
                self.spans[span_id] = SpanRecord(
                    span_id=span_id,
                    name=record["name"],
                    parent_id=record.get("parent"),
                    start=record["ts"],
                    attrs={
                        k: v
                        for k, v in record.items()
                        if k not in _ENVELOPE
                    },
                )
            elif kind == "span_end":
                span = self.spans.get(record["span"])
                if span is not None:
                    span.end = record["ts"]
                    span.attrs.update(
                        {
                            k: v
                            for k, v in record.items()
                            if k not in _ENVELOPE
                        }
                    )
            elif kind == "event":
                span = self.spans.get(record.get("span"))
                if span is not None:
                    span.events.append(
                        (
                            record["ts"],
                            record["name"],
                            {
                                k: v
                                for k, v in record.items()
                                if k not in _ENVELOPE
                            },
                        )
                    )
            elif kind == "snapshot":
                self.snapshots.append(record)
            elif kind == "metric":
                self.metrics.append(record)
        for span in self.spans.values():
            if span.parent_id is not None:
                parent = self.spans.get(span.parent_id)
                if parent is not None:
                    parent.children.append(span)
        for span in self.spans.values():
            span.children.sort(key=lambda s: (s.start, s.span_id))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def roots(self) -> List[SpanRecord]:
        """Top-level spans, in start order."""
        return sorted(
            (s for s in self.spans.values() if s.parent_id is None),
            key=lambda s: (s.start, s.span_id),
        )

    def rounds(self) -> List[SpanRecord]:
        """The reconfiguration-round span trees, in start order."""
        return [s for s in self.roots() if s.name == "reconfiguration_round"]

    def metric(self, name: str, **labels: str) -> Any:
        """The (last) exported value of one metric, or None."""
        wanted = {k: str(v) for k, v in labels.items()}
        value = None
        for sample in self.metrics:
            if sample.get("metric") == name and sample.get(
                "labels", {}
            ) == wanted:
                value = sample.get("value")
        return value

    def metric_family(self, name: str) -> Dict[str, Any]:
        """All label-sets of one metric, keyed by a compact label repr."""
        family = {}
        for sample in self.metrics:
            if sample.get("metric") == name:
                labels = sample.get("labels", {})
                key = ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) or "-"
                family[key] = sample.get("value")
        return family

    def __repr__(self) -> str:
        return (
            f"TelemetryLog(records={len(self.records)}, "
            f"spans={len(self.spans)}, snapshots={len(self.snapshots)}, "
            f"metrics={len(self.metrics)})"
        )
