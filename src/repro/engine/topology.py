"""Topology definition: the application DAG.

A topology declares named operators (spouts and bolts), their
parallelism, and the streams between them, each labeled with a routing
policy (grouping). The builder validates the result: unique names,
acyclicity, spouts without inputs, bolts with at least one input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.engine.grouping import Grouping
from repro.errors import TopologyError

SPOUT = "spout"
BOLT = "bolt"


@dataclass
class OperatorSpec:
    """Declaration of one operator (PO)."""

    name: str
    kind: str  # SPOUT or BOLT
    factory: Callable[[], object]
    parallelism: int

    @property
    def is_spout(self) -> bool:
        return self.kind == SPOUT


@dataclass
class StreamSpec:
    """Declaration of one stream (DAG edge) with its routing policy."""

    src: str
    dst: str
    grouping: Grouping
    #: optional explicit stream name; defaults to ``"src->dst"``
    label: Optional[str] = None

    @property
    def name(self) -> str:
        return self.label if self.label is not None else f"{self.src}->{self.dst}"


@dataclass
class Topology:
    """A validated application DAG."""

    operators: Dict[str, OperatorSpec]
    streams: List[StreamSpec]
    _order: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._order:
            self._order = self._topological_order()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def spouts(self) -> List[OperatorSpec]:
        return [op for op in self.operators.values() if op.is_spout]

    @property
    def bolts(self) -> List[OperatorSpec]:
        return [op for op in self.operators.values() if not op.is_spout]

    def operator(self, name: str) -> OperatorSpec:
        try:
            return self.operators[name]
        except KeyError:
            raise TopologyError(f"unknown operator {name!r}") from None

    def inputs_of(self, name: str) -> List[StreamSpec]:
        return [s for s in self.streams if s.dst == name]

    def outputs_of(self, name: str) -> List[StreamSpec]:
        return [s for s in self.streams if s.src == name]

    def stream(self, src: str, dst: str) -> StreamSpec:
        for spec in self.streams:
            if spec.src == src and spec.dst == dst:
                return spec
        raise TopologyError(f"no stream {src!r} -> {dst!r}")

    def topological_order(self) -> List[str]:
        """Operator names in DAG order (spouts first)."""
        return list(self._order)

    def sinks(self) -> List[str]:
        """Operators with no outgoing streams."""
        sources = {s.src for s in self.streams}
        return [name for name in self._order if name not in sources]

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def _topological_order(self) -> List[str]:
        indegree = {name: 0 for name in self.operators}
        for stream in self.streams:
            indegree[stream.dst] += 1
        frontier = [name for name, deg in indegree.items() if deg == 0]
        # Keep declaration order deterministic.
        frontier.sort(key=list(self.operators).index)
        order: List[str] = []
        while frontier:
            name = frontier.pop(0)
            order.append(name)
            for stream in self.outputs_of(name):
                indegree[stream.dst] -= 1
                if indegree[stream.dst] == 0:
                    frontier.append(stream.dst)
        if len(order) != len(self.operators):
            raise TopologyError("topology contains a cycle")
        return order


class TopologyBuilder:
    """Fluent builder for :class:`Topology`.

    Example
    -------
    >>> builder = TopologyBuilder()
    >>> builder.spout("source", lambda: MySpout(), parallelism=2)
    >>> builder.bolt(
    ...     "count",
    ...     lambda: CountBolt(0),
    ...     parallelism=2,
    ...     inputs={"source": FieldsGrouping(0)},
    ... )
    >>> topology = builder.build()
    """

    def __init__(self) -> None:
        self._operators: Dict[str, OperatorSpec] = {}
        self._streams: List[StreamSpec] = []

    def spout(
        self,
        name: str,
        factory: Callable[[], object],
        parallelism: int = 1,
    ) -> "TopologyBuilder":
        """Declare a spout (stream source)."""
        self._add_operator(name, SPOUT, factory, parallelism)
        return self

    def bolt(
        self,
        name: str,
        factory: Callable[[], object],
        parallelism: int = 1,
        inputs: Optional[Mapping[str, Grouping]] = None,
    ) -> "TopologyBuilder":
        """Declare a bolt and the streams feeding it.

        Parameters
        ----------
        inputs:
            Mapping from upstream operator name to the grouping used on
            that stream.
        """
        self._add_operator(name, BOLT, factory, parallelism)
        for src, grouping in (inputs or {}).items():
            self.stream(src, name, grouping)
        return self

    def stream(
        self,
        src: str,
        dst: str,
        grouping: Grouping,
        name: Optional[str] = None,
    ) -> "TopologyBuilder":
        """Declare a stream between two already-declared operators.

        ``name`` optionally overrides the default ``"src->dst"`` label;
        nothing in the system may rely on parsing that default form.
        """
        if not isinstance(grouping, Grouping):
            raise TopologyError(
                f"grouping for {src!r}->{dst!r} must be a Grouping, "
                f"got {type(grouping).__name__}"
            )
        for existing in self._streams:
            if existing.src == src and existing.dst == dst:
                raise TopologyError(f"duplicate stream {src!r} -> {dst!r}")
        spec = StreamSpec(src, dst, grouping, label=name)
        for existing in self._streams:
            if existing.name == spec.name:
                raise TopologyError(f"duplicate stream name {spec.name!r}")
        self._streams.append(spec)
        return self

    def build(self) -> Topology:
        """Validate and return the topology."""
        if not self._operators:
            raise TopologyError("topology has no operators")
        names = set(self._operators)
        for stream in self._streams:
            for endpoint in (stream.src, stream.dst):
                if endpoint not in names:
                    raise TopologyError(
                        f"stream references unknown operator {endpoint!r}"
                    )
            if self._operators[stream.dst].is_spout:
                raise TopologyError(
                    f"spout {stream.dst!r} cannot receive a stream"
                )
        has_input = {s.dst for s in self._streams}
        for op in self._operators.values():
            if not op.is_spout and op.name not in has_input:
                raise TopologyError(f"bolt {op.name!r} has no input stream")
        if not any(op.is_spout for op in self._operators.values()):
            raise TopologyError("topology needs at least one spout")
        topology = Topology(dict(self._operators), list(self._streams))
        return topology

    def _add_operator(
        self, name: str, kind: str, factory: Callable, parallelism: int
    ) -> None:
        if name in self._operators:
            raise TopologyError(f"duplicate operator name {name!r}")
        if not callable(factory):
            raise TopologyError(f"factory for {name!r} must be callable")
        if parallelism < 1:
            raise TopologyError(
                f"parallelism of {name!r} must be >= 1, got {parallelism}"
            )
        self._operators[name] = OperatorSpec(name, kind, factory, parallelism)
