"""Explicit routing tables: key → destination instance.

A routing table overrides hash-based fields grouping for the keys it
contains; unknown keys fall back to the hash policy (Section 3.3:
"When a key is not present in the routing table, it falls back to the
standard hash-based routing policy").
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional, Set, Tuple


class RoutingTable:
    """Immutable-by-convention mapping from key to instance index."""

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Dict[Hashable, int]] = None) -> None:
        self._mapping: Dict[Hashable, int] = dict(mapping or {})

    @classmethod
    def empty(cls) -> "RoutingTable":
        return cls()

    # ------------------------------------------------------------------
    # Lookup API (consumed by the engine's TableRouter)
    # ------------------------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[int]:
        """Destination instance for ``key``, or None (hash fallback)."""
        return self._mapping.get(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._mapping)

    def items(self) -> Iterator[Tuple[Hashable, int]]:
        return iter(self._mapping.items())

    def as_dict(self) -> Dict[Hashable, int]:
        return dict(self._mapping)

    def max_instance(self) -> Optional[int]:
        """Highest instance index any entry routes to, or None for an
        empty table. A table is valid for width ``n`` iff
        ``max_instance() is None or max_instance() < n`` — rescale
        invariant checks audit exactly this."""
        if not self._mapping:
            return None
        return max(self._mapping.values())

    # ------------------------------------------------------------------
    # Diffing (used to build migration lists)
    # ------------------------------------------------------------------

    def moved_keys(
        self, new: "RoutingTable", fallback
    ) -> Dict[Hashable, Tuple[int, int]]:
        """Keys whose owner changes between ``self`` and ``new``.

        ``fallback(key) -> int`` resolves the owner of keys absent from
        a table (the hash policy). Returns ``{key: (old, new)}`` over
        the union of both tables' keys.
        """
        union: Set[Hashable] = set(self._mapping) | set(new._mapping)
        moved: Dict[Hashable, Tuple[int, int]] = {}
        for key in union:
            old_owner = self._mapping.get(key)
            if old_owner is None:
                old_owner = fallback(key)
            new_owner = new._mapping.get(key)
            if new_owner is None:
                new_owner = fallback(key)
            if old_owner != new_owner:
                moved[key] = (old_owner, new_owner)
        return moved

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RoutingTable) and other._mapping == self._mapping
        )

    def __repr__(self) -> str:
        return f"RoutingTable({len(self._mapping)} keys)"
