"""Weighted undirected graph used by the partitioner.

Vertices are integers ``0..n-1``. Each vertex carries a non-negative
weight (key frequency, in the paper's usage) and each edge a positive
weight (key-pair co-occurrence count). Parallel edge insertions
accumulate; self-loops are rejected because they never contribute to an
edge cut.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PartitioningError


class Graph:
    """Adjacency-map weighted undirected graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0..num_vertices-1``.
    vertex_weights:
        Optional per-vertex weights (default: all 1.0). Must be
        non-negative.
    """

    __slots__ = ("_adj", "_vertex_weights", "_total_edge_weight", "_num_edges")

    def __init__(
        self,
        num_vertices: int,
        vertex_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if num_vertices < 0:
            raise PartitioningError(
                f"num_vertices must be >= 0, got {num_vertices}"
            )
        if vertex_weights is None:
            self._vertex_weights: List[float] = [1.0] * num_vertices
        else:
            if len(vertex_weights) != num_vertices:
                raise PartitioningError(
                    f"expected {num_vertices} vertex weights, "
                    f"got {len(vertex_weights)}"
                )
            weights = [float(w) for w in vertex_weights]
            if any(w < 0 for w in weights):
                raise PartitioningError("vertex weights must be >= 0")
            self._vertex_weights = weights
        self._adj: List[Dict[int, float]] = [{} for _ in range(num_vertices)]
        self._total_edge_weight = 0.0
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int, float]],
        vertex_weights: Optional[Sequence[float]] = None,
    ) -> "Graph":
        """Build a graph from ``(u, v, weight)`` triples."""
        graph = cls(num_vertices, vertex_weights)
        for u, v, weight in edges:
            graph.add_edge(u, v, weight)
        return graph

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge ``{u, v}``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise PartitioningError(f"self-loop on vertex {u} rejected")
        if weight <= 0:
            raise PartitioningError(f"edge weight must be > 0, got {weight}")
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        self._adj[v][u] = self._adj[v].get(u, 0.0) + weight
        self._total_edge_weight += weight

    def set_vertex_weight(self, v: int, weight: float) -> None:
        self._check_vertex(v)
        if weight < 0:
            raise PartitioningError(f"vertex weight must be >= 0, got {weight}")
        self._vertex_weights[v] = float(weight)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def total_edge_weight(self) -> float:
        return self._total_edge_weight

    @property
    def total_vertex_weight(self) -> float:
        return sum(self._vertex_weights)

    def vertex_weight(self, v: int) -> float:
        self._check_vertex(v)
        return self._vertex_weights[v]

    def vertex_weights(self) -> List[float]:
        """A copy of the vertex weight vector."""
        return list(self._vertex_weights)

    def neighbors(self, v: int) -> Dict[int, float]:
        """Mapping neighbor -> edge weight. Do not mutate."""
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adj[v])

    def adjacency_weight(self, v: int) -> float:
        """Sum of the weights of edges incident to ``v``."""
        self._check_vertex(v)
        return sum(self._adj[v].values())

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``, 0.0 if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._adj[u].get(v, 0.0)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` (u < v)."""
        for u, adjacency in enumerate(self._adj):
            for v, weight in adjacency.items():
                if u < v:
                    yield u, v, weight

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", List[int]]:
        """Induced subgraph over ``vertices``.

        Returns
        -------
        (subgraph, selected)
            ``selected[i]`` is the original id of subgraph vertex ``i``.
        """
        selected = list(vertices)
        index = {v: i for i, v in enumerate(selected)}
        if len(index) != len(selected):
            raise PartitioningError("duplicate vertices in subgraph selection")
        sub = Graph(
            len(selected),
            [self._vertex_weights[v] for v in selected],
        )
        for i, v in enumerate(selected):
            for neighbor, weight in self._adj[v].items():
                j = index.get(neighbor)
                if j is not None and i < j:
                    sub.add_edge(i, j, weight)
        return sub, selected

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise PartitioningError(
                f"vertex {v} out of range [0, {len(self._adj)})"
            )

    def __repr__(self) -> str:
        return (
            f"Graph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
