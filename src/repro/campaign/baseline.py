"""Metric axis semantics and committed-baseline diffing.

This is the one home of the repo's metric-direction convention —
``tools/bench_record.py`` (the engine perf trajectory) delegates here,
and campaign reports use the same rules:

- ``*_per_s``   — higher is better (throughput rates);
- ``*_bytes_per_key`` — lower is better (memory-model numbers);
- anything else — informational, unless the campaign's ``axes:``
  mapping assigns it an explicit ``higher`` / ``lower`` direction
  (e.g. ``locality: higher``, ``load_balance: lower``).

A *regression* is a gated metric moving in its bad direction by more
than the tolerance (default 20%), or a baseline metric missing from
the current run. Movement of exactly the tolerance is **not** a
regression (the gate is strict-beyond). Metrics that exist only in
the current run are new axes: informational, never gated — a PR that
adds measurements must not fail its own gate.

Campaign baselines are committed JSON documents mapping cell id →
metrics (see :func:`write_baseline`); :func:`diff_campaign` compares a
fresh run against one, cell by cell.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Dict, List, Optional

BASELINE_SCHEMA = "repro.campaign/baseline-v1"

#: suffix conventions shared with tools/bench_record.py
HIGHER_SUFFIXES = ("_per_s",)
LOWER_SUFFIXES = ("_bytes_per_key",)


def axis_of(
    key: str, extra_axes: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """The direction of one metric: "higher", "lower", or None
    (informational). Explicit ``extra_axes`` win over suffixes."""
    if extra_axes and key in extra_axes:
        return extra_axes[key]
    if key.endswith(HIGHER_SUFFIXES):
        return "higher"
    if key.endswith(LOWER_SUFFIXES):
        return "lower"
    return None


def compare_metrics(
    baseline_metrics: Dict[str, float],
    metrics: Dict[str, float],
    tolerance: float = 0.20,
    extra_axes: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Regression messages for every directed metric that moved the
    wrong way by more than ``tolerance``. Empty list = no regression.

    Baseline metrics with no direction are ignored; directed baseline
    metrics missing from ``metrics`` are reported; metrics only in
    ``metrics`` (new axes) are never reported.
    """
    regressions = []
    for key, base in sorted(baseline_metrics.items()):
        axis = axis_of(key, extra_axes)
        if axis is None:
            continue
        now = metrics.get(key)
        if now is None:
            regressions.append(f"{key}: missing from current run")
            continue
        if base <= 0:
            continue
        if axis == "higher" and now < base * (1.0 - tolerance):
            regressions.append(
                f"{key}: {now:,.4g} is {now / base:.2f}x of "
                f"baseline {base:,.4g} "
                f"(allowed >= {1.0 - tolerance:.2f}x)"
            )
        elif axis == "lower" and now > base * (1.0 + tolerance):
            regressions.append(
                f"{key}: {now:,.4g} is {now / base:.2f}x of "
                f"baseline {base:,.4g} "
                f"(allowed <= {1.0 + tolerance:.2f}x)"
            )
    return regressions


# ----------------------------------------------------------------------
# Campaign baseline documents
# ----------------------------------------------------------------------


def load_baseline(path: str) -> dict:
    """Load a committed campaign baseline document."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    schema = doc.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema {schema!r} "
            f"(expected {BASELINE_SCHEMA!r})"
        )
    return doc


def write_baseline(
    path: str,
    campaign: str,
    cells: Dict[str, Dict[str, float]],
    fingerprints: Optional[Dict[str, str]] = None,
    label: str = "",
) -> dict:
    """Write a campaign baseline: cell id → metrics (and, for episode
    campaigns, cell id → fingerprint, informational)."""
    doc = {
        "schema": BASELINE_SCHEMA,
        "campaign": campaign,
        "label": label or campaign,
        "recorded_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "cells": {
            cell: {k: metrics[k] for k in sorted(metrics)}
            for cell, metrics in sorted(cells.items())
        },
    }
    if fingerprints:
        doc["fingerprints"] = dict(sorted(fingerprints.items()))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return doc


def diff_campaign(
    baseline_doc: dict,
    cell_metrics: Dict[str, Dict[str, float]],
    tolerance: float = 0.20,
    extra_axes: Optional[Dict[str, str]] = None,
) -> dict:
    """Compare a fresh run against a committed baseline.

    Returns ``{"regressions": {cell_id: [msg, ...]}, "missing_cells":
    [...], "new_cells": [...]}``. A baseline cell absent from the run
    fails the gate (the sweep shrank); a run cell absent from the
    baseline is informational (the sweep grew).
    """
    base_cells: Dict[str, Dict[str, float]] = baseline_doc.get("cells", {})
    regressions: Dict[str, List[str]] = {}
    for cell, base in sorted(base_cells.items()):
        if cell not in cell_metrics:
            continue
        messages = compare_metrics(
            base, cell_metrics[cell], tolerance, extra_axes
        )
        if messages:
            regressions[cell] = messages
    return {
        "regressions": regressions,
        "missing_cells": sorted(set(base_cells) - set(cell_metrics)),
        "new_cells": sorted(set(cell_metrics) - set(base_cells)),
    }
