"""The RNG tree: stable derivation, independent streams."""

from repro.testing import RngTree


def test_same_path_same_stream():
    tree = RngTree(123)
    a = tree.rng("workload", 4)
    b = tree.rng("workload", 4)
    assert [a.random() for _ in range(10)] == [
        b.random() for _ in range(10)
    ]


def test_derive_is_pure():
    tree = RngTree(5)
    assert tree.derive("x", 1).seed == tree.derive("x", 1).seed
    assert tree.derive("x", 1).derive("y").seed == (
        tree.derive("x", 1).derive("y").seed
    )


def test_paths_are_independent():
    tree = RngTree(0)
    seeds = {
        tree.derive(path, i).seed
        for path in ("episode", "faults", "workload")
        for i in range(50)
    }
    # No collisions across 150 derivations.
    assert len(seeds) == 150


def test_sibling_roots_diverge():
    assert RngTree(1).derive("a").seed != RngTree(2).derive("a").seed
    r1 = RngTree(1).rng("a")
    r2 = RngTree(2).rng("a")
    assert [r1.random() for _ in range(5)] != [
        r2.random() for _ in range(5)
    ]
