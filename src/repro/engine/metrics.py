"""Run-time metrics: counters, locality, load balance, throughput.

The locality metric matches the paper's definition: the fraction of
tuples on a stream delivered to an instance on the *same server* as the
sender. Load balance matches Fig. 11b: the ratio between the most
loaded instance of an operator and the average load.

Every tally lives in (or is registered with) the hub's
:class:`~repro.observability.registry.MetricRegistry`: per-stream
:class:`StreamCounters` are registry-owned shared objects, and the
per-instance dicts are exported through registered callbacks. The
``locality()`` and ``load_balance()`` computations therefore read the
exact counters a telemetry exporter samples — there is no second tally
that could drift or double-count when both paths are enabled.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.observability.registry import MetricRegistry


class LatencyStats:
    """End-to-end tuple latency: count/mean/max plus percentile
    estimates from a bounded reservoir sample (algorithm R), so memory
    stays constant no matter how many tuples complete."""

    def __init__(self, reservoir_size: int = 4096, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self._size = reservoir_size
        self._rng = random.Random(seed)
        self._reservoir: List[float] = []
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, latency_s: float) -> None:
        self.count += 1
        self.total += latency_s
        if latency_s > self.max:
            self.max = latency_s
        if len(self._reservoir) < self._size:
            self._reservoir.append(latency_s)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._size:
                self._reservoir[slot] = latency_s

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]) from the reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(
            len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1)
        )
        return ordered[index]

    def reset(self) -> None:
        self._reservoir.clear()
        self.count = 0
        self.total = 0.0
        self.max = 0.0


class StreamCounters:
    """Per-stream tuple/byte counters split by locality."""

    __slots__ = ("local_tuples", "remote_tuples", "local_bytes", "remote_bytes")

    def __init__(self) -> None:
        self.local_tuples = 0
        self.remote_tuples = 0
        self.local_bytes = 0
        self.remote_bytes = 0

    @property
    def total_tuples(self) -> int:
        return self.local_tuples + self.remote_tuples

    def locality(self) -> float:
        total = self.total_tuples
        if total == 0:
            return 1.0
        return self.local_tuples / total

    def copy(self) -> "StreamCounters":
        clone = StreamCounters()
        clone.local_tuples = self.local_tuples
        clone.remote_tuples = self.remote_tuples
        clone.local_bytes = self.local_bytes
        clone.remote_bytes = self.remote_bytes
        return clone

    def minus(self, other: "StreamCounters") -> "StreamCounters":
        delta = StreamCounters()
        delta.local_tuples = self.local_tuples - other.local_tuples
        delta.remote_tuples = self.remote_tuples - other.remote_tuples
        delta.local_bytes = self.local_bytes - other.local_bytes
        delta.remote_bytes = self.remote_bytes - other.remote_bytes
        return delta

    def telemetry_value(self) -> Dict[str, float]:
        return {
            "local_tuples": self.local_tuples,
            "remote_tuples": self.remote_tuples,
            "local_bytes": self.local_bytes,
            "remote_bytes": self.remote_bytes,
            "locality": self.locality(),
        }


class _StreamMap(dict):
    """``stream name → StreamCounters`` where every value is owned by
    the metric registry (``stream_traffic`` family), so the hub and a
    telemetry exporter share one counter object per stream."""

    def __init__(self, registry: MetricRegistry) -> None:
        super().__init__()
        self._registry = registry

    def __missing__(self, name: str) -> StreamCounters:
        counters = self._registry.state(
            "stream_traffic", StreamCounters, stream=name
        )
        self[name] = counters
        return counters


class MetricsHub:
    """Central tally store all executors report into.

    The hub owns (or is handed) the run's
    :class:`~repro.observability.registry.MetricRegistry` and keeps its
    tallies inside it: stream counters are registry ``state`` objects,
    per-instance dicts are exported through registry callbacks. See the
    module docstring for why this matters.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.emitted: Dict[Tuple[str, int], int] = defaultdict(int)
        self.processed: Dict[Tuple[str, int], int] = defaultdict(int)
        self.received: Dict[Tuple[str, int], int] = defaultdict(int)
        #: per-stream traffic; values are registry-owned StreamCounters
        self.streams: Dict[str, StreamCounters] = _StreamMap(self.registry)
        self.dropped: Dict[str, int] = defaultdict(int)
        #: injected faults by action (fed by repro.faults.FaultInjector)
        self.faults: Dict[str, int] = defaultdict(int)
        #: control-plane messages/bytes by kind (PROPAGATE, MIGRATE, …)
        self.control_messages: Dict[str, int] = defaultdict(int)
        self.control_bytes: Dict[str, int] = defaultdict(int)
        #: keys shipped between peers by MIGRATE messages
        self.migrated_keys = 0
        #: reconfiguration rounds aborted on deadline (fed by Manager)
        self.rounds_aborted = 0
        #: end-to-end latency of completed tuple trees (fed by the acker)
        self.latency = LatencyStats()
        self._export_tallies()

    def _export_tallies(self) -> None:
        """Register the dict tallies with the registry so an exporter
        samples the same stores the hub computes from."""
        per_instance = lambda tally: {  # noqa: E731
            f"{op}[{i}]": count for (op, i), count in sorted(tally.items())
        }
        register = self.registry.register_callback
        register("operator_emitted_tuples", lambda: per_instance(self.emitted))
        register(
            "operator_processed_tuples", lambda: per_instance(self.processed)
        )
        register(
            "operator_received_tuples", lambda: per_instance(self.received)
        )
        register("dropped_tuples", lambda: dict(self.dropped))
        register("faults_injected", lambda: dict(self.faults))
        register("control_messages", lambda: dict(self.control_messages))
        register("control_bytes", lambda: dict(self.control_bytes))
        register("migrated_keys_total", lambda: self.migrated_keys)
        register("rounds_aborted_total", lambda: self.rounds_aborted)
        register(
            "latency_seconds",
            lambda: {
                "count": self.latency.count,
                "mean": self.latency.mean,
                "p50": self.latency.percentile(0.50),
                "p99": self.latency.percentile(0.99),
                "max": self.latency.max,
            },
        )

    # -- reporting (hot path, called by executors) ----------------------

    def on_emit(self, op: str, instance: int) -> None:
        self.emitted[(op, instance)] += 1

    def on_route(self, stream: str, remote: bool, nbytes: int) -> None:
        counters = self.streams[stream]
        if remote:
            counters.remote_tuples += 1
            counters.remote_bytes += nbytes
        else:
            counters.local_tuples += 1
            counters.local_bytes += nbytes

    def on_delivered(self, op: str, instance: int) -> None:
        self.received[(op, instance)] += 1

    def on_processed(self, op: str, instance: int) -> None:
        self.processed[(op, instance)] += 1

    def on_fault(self, action: str) -> None:
        self.faults[action] += 1

    def on_control_sent(self, kind: str, nbytes: int) -> None:
        self.control_messages[kind] += 1
        self.control_bytes[kind] += nbytes

    def on_keys_migrated(self, count: int) -> None:
        self.migrated_keys += count

    def on_round_aborted(self) -> None:
        self.rounds_aborted += 1

    # -- aggregate queries ----------------------------------------------

    def processed_total(self, op: str) -> int:
        return sum(
            count for (name, _), count in self.processed.items() if name == op
        )

    def emitted_total(self, op: str) -> int:
        return sum(
            count for (name, _), count in self.emitted.items() if name == op
        )

    def received_per_instance(self, op: str, parallelism: int) -> List[int]:
        return [self.received.get((op, i), 0) for i in range(parallelism)]

    def locality(self, stream: Optional[str] = None) -> float:
        """Locality of one stream, or of all streams combined."""
        if stream is not None:
            return self.streams[stream].locality()
        local = sum(c.local_tuples for c in self.streams.values())
        total = sum(c.total_tuples for c in self.streams.values())
        if total == 0:
            return 1.0
        return local / total

    def load_balance(self, op: str, parallelism: int) -> float:
        """max load / mean load over the instances of ``op`` (>= 1.0)."""
        loads = self.received_per_instance(op, parallelism)
        total = sum(loads)
        if total == 0:
            return 1.0
        mean = total / parallelism
        return max(loads) / mean

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot(self)


class MetricsSnapshot:
    """A frozen copy of the counters, for warmup-adjusted deltas."""

    def __init__(self, hub: MetricsHub) -> None:
        self.emitted = dict(hub.emitted)
        self.processed = dict(hub.processed)
        self.received = dict(hub.received)
        self.streams = {name: c.copy() for name, c in hub.streams.items()}

    def processed_total(self, op: str) -> int:
        return sum(
            count for (name, _), count in self.processed.items() if name == op
        )


class ThroughputSampler:
    """Samples an operator's processing rate every ``interval`` seconds
    of simulated time — the probe behind the Fig. 13 time series."""

    def __init__(self, sim, metrics: MetricsHub, op: str, interval_s: float):
        if interval_s <= 0:
            raise ValueError(f"interval must be > 0, got {interval_s}")
        self._sim = sim
        self._metrics = metrics
        self._op = op
        self._interval = interval_s
        self._last_total = 0
        #: list of (window_end_time, tuples_per_second)
        self.samples: List[Tuple[float, float]] = []

    def start(self) -> None:
        self._last_total = self._metrics.processed_total(self._op)
        self._sim.schedule(self._interval, self._tick, daemon=True)

    def _tick(self) -> None:
        total = self._metrics.processed_total(self._op)
        rate = (total - self._last_total) / self._interval
        self._last_total = total
        self.samples.append((self._sim.now, rate))
        self._sim.schedule(self._interval, self._tick, daemon=True)
