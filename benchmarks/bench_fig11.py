"""Figure 11: locality (a) and load balance (b) over 25 weeks, for
online / offline / hash-based routing at parallelism 6.

Paper claims asserted:
- hash-based locality stays around 1/6;
- online and offline reach ~3x hash locality after the first week;
- offline decays over time; online stays high (fluctuating
  correlations need regular reconfiguration);
- reconfigured tables start well balanced; hash stays fairly even;
- the partitioner's predicted locality exceeds what the next week
  achieves (new keys arrive).
"""

import statistics

import pytest

from helpers import save_table
from repro.analysis.experiments import fig11, fig11_predicted_locality
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig11(quick=quick)


def _series(rows, mode, key):
    return [r[key] for r in rows if r["mode"] == mode]


def test_fig11_regenerate(rows, benchmark, quick):
    benchmark.pedantic(
        lambda: fig11(weeks=2, quick=True), rounds=1, iterations=1
    )
    table = format_table(rows, title="Figure 11: weekly locality / balance")
    print()
    print(table)
    save_table("fig11", table)


def test_fig11a_hash_locality_is_one_over_n(rows):
    hash_locality = _series(rows, "hash-based", "locality")
    assert statistics.mean(hash_locality) == pytest.approx(1 / 6, abs=0.05)


def test_fig11a_reconfigured_locality_far_above_hash(rows):
    hash_mean = statistics.mean(_series(rows, "hash-based", "locality"))
    online = _series(rows, "online", "locality")[1:]
    offline = _series(rows, "offline", "locality")[1:]
    assert statistics.mean(online) > 2.5 * hash_mean
    assert statistics.mean(offline) > 2.0 * hash_mean


def test_fig11a_offline_decays_online_does_not(rows):
    online = _series(rows, "online", "locality")
    offline = _series(rows, "offline", "locality")
    early = offline[1]
    late = statistics.mean(offline[-3:])
    assert late < early - 0.05  # offline decays
    online_late = statistics.mean(online[-3:])
    assert online_late > late + 0.05  # online stays higher


def test_fig11b_tables_start_balanced(rows):
    # The week right after the first configuration is balanced near
    # the α bound, for both online and offline.
    for mode in ("online", "offline"):
        balance = _series(rows, mode, "load_balance")
        assert min(balance[1:3]) < 1.35


def test_fig11b_hash_balance_steady(rows):
    balance = _series(rows, "hash-based", "load_balance")
    assert statistics.mean(balance) < 1.45
    assert max(balance) - min(balance) < 0.5


def test_fig11_predicted_exceeds_achieved(quick):
    result = fig11_predicted_locality(quick=quick)
    print()
    print(
        f"predicted={result['predicted']:.2f} "
        f"same-week={result['achieved_on_training_week']:.2f} "
        f"next-week={result['achieved_on_next_week']:.2f}"
    )
    assert result["predicted"] > result["achieved_on_next_week"] + 0.05
    assert (
        result["achieved_on_training_week"]
        > result["achieved_on_next_week"]
    )
