"""Multilevel graph partitioning (Metis substitute).

The paper partitions the bipartite key graph with the Metis library
(Karypis & Kumar, SIAM J. Sci. Comput. 1998). Metis is a C library and is
not available here, so this subpackage implements the same algorithmic
recipe from scratch:

1. **Coarsening** by heavy-edge matching until the graph is small.
2. **Initial bisection** by greedy graph growing (best of several seeds).
3. **Uncoarsening** with Fiduccia–Mattheyses boundary refinement at every
   level, under a vertex-weight balance constraint.
4. **k-way** partitioning by recursive bisection with proportional
   target weights.

Public API:

- :class:`~repro.partitioning.graph.Graph` — weighted undirected graph.
- :func:`~repro.partitioning.kway.partition` — k-way partitioning,
  ``partition(graph, nparts, imbalance=1.03, seed=0) -> list[int]``.
- :func:`~repro.partitioning.quality.edge_cut`,
  :func:`~repro.partitioning.quality.balance` — quality metrics.
"""

from repro.partitioning.graph import Graph
from repro.partitioning.kway import partition
from repro.partitioning.quality import balance, edge_cut, part_weights

__all__ = ["Graph", "partition", "edge_cut", "balance", "part_weights"]
