"""Chaos matrix: the paper's no-tuple-loss / no-count-misplaced
invariant (Section 3.4) must hold with and without injected faults.

Every scenario runs the same workload as the fault-free baseline and
must end with (a) the same delivered-tuple count at the sink PO, (b)
per-key state totals identical to ground truth, (c) no round left
active, no keys left held, nothing left in flight. Scenarios that
wedge a round additionally assert the manager's deadline recovery
(round aborted, tables rolled back).

Crash/restart is asserted separately: a crash legitimately loses
engine state, so the guarantee degrades to the engine's at-least-once
delivery ("the guarantees are the ones provided by the streaming
engine and are not impacted by state migration").
"""

import random
from collections import Counter

import pytest

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Bolt,
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.faults import (
    ControlFault,
    CrashAt,
    FaultInjector,
    FaultPlan,
    LinkDelay,
    RpcFault,
)

N = 3
PER_SPOUT = 8000
PERIOD_S = 0.05
TIMEOUT_S = 0.03


def _source(ctx):
    """Spout i mostly emits key i (pair key i+100): reconfigurable."""
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _ground_truth():
    truth_a, truth_b = Counter(), Counter()
    for i in range(N):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            a = i if rng.random() < 0.8 else rng.randrange(N)
            truth_a[a] += 1
            truth_b[a + 100] += 1
    return truth_a, truth_b


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _run(plan=None):
    sim = Simulator()
    deployment = deploy(sim, Cluster(sim, N), _build())
    manager = Manager(
        deployment,
        ManagerConfig(period_s=PERIOD_S, round_timeout_s=TIMEOUT_S),
    )
    injector = None
    if plan is not None:
        injector = FaultInjector(plan).attach(deployment, manager)
    manager.start()
    deployment.start()
    sim.run(until=0.5)
    manager.stop()
    sim.run()  # drain (including delayed redeliveries and deadlines)
    return deployment, manager, injector


def _state_totals(deployment, op):
    totals = Counter()
    for executor in deployment.instances(op):
        for key, count in executor.operator.state.items():
            totals[key] += count
    return totals


#: name -> (plan factory, round expected to wedge and abort?)
SCENARIOS = {
    "drop_propagate": (
        lambda: FaultPlan(
            control=[ControlFault("drop", kind="PROPAGATE", max_matches=2)]
        ),
        True,
    ),
    "drop_rpc_send_metrics": (
        lambda: FaultPlan(rpcs=[RpcFault("drop", step="SEND_METRICS")]),
        True,
    ),
    "drop_rpc_ack": (
        lambda: FaultPlan(rpcs=[RpcFault("drop", step="ACK_RECONF")]),
        True,
    ),
    "delay_propagate": (
        lambda: FaultPlan(
            control=[
                ControlFault(
                    "delay", kind="PROPAGATE", delay_s=0.004, max_matches=3
                )
            ]
        ),
        False,
    ),
    "delay_migrate_past_deadline": (
        # Delay exceeds the round deadline: the round aborts, then the
        # stale MIGRATE lands and must still install (never lose state).
        lambda: FaultPlan(
            control=[
                ControlFault("delay", kind="MIGRATE", delay_s=0.05)
            ]
        ),
        True,
    ),
    "duplicate_propagate": (
        lambda: FaultPlan(
            control=[
                ControlFault("duplicate", kind="PROPAGATE", max_matches=2)
            ]
        ),
        False,
    ),
    "duplicate_migrate": (
        lambda: FaultPlan(
            control=[
                ControlFault("duplicate", kind="MIGRATE", max_matches=2)
            ]
        ),
        False,
    ),
    "reorder_control_at_b": (
        lambda: FaultPlan(
            control=[ControlFault("reorder", kind="PROPAGATE", dst_op="B")]
        ),
        False,
    ),
    "slow_control_links": (
        lambda: FaultPlan(
            links=[LinkDelay(extra_s=0.002, max_matches=10)]
        ),
        False,
    ),
}


@pytest.fixture(scope="module")
def baseline():
    deployment, manager, _ = _run()
    assert deployment.metrics.processed_total("B") == N * PER_SPOUT
    return {
        "processed": deployment.metrics.processed_total("B"),
        "state_a": _state_totals(deployment, "A"),
        "state_b": _state_totals(deployment, "B"),
        "effective_rounds": sum(
            1 for r in manager.completed_rounds if not r.skipped
        ),
    }


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_invariant_holds_under_faults(name, baseline):
    factory, expect_abort = SCENARIOS[name]
    deployment, manager, injector = _run(factory())

    # The scenario actually injected something.
    assert injector.injected > 0, f"{name}: no fault fired"

    # (a) every emitted tuple was delivered exactly once end to end.
    assert (
        deployment.metrics.processed_total("B") == baseline["processed"]
    ), f"{name}: tuple loss or duplication"
    assert deployment.acker.in_flight == 0

    # (b) per-key state totals match the fault-free ground truth.
    truth_a, truth_b = _ground_truth()
    assert _state_totals(deployment, "A") == truth_a, f"{name}: A state"
    assert _state_totals(deployment, "B") == truth_b, f"{name}: B state"

    # (c) the control plane came to rest: no active round, no held
    # keys, and every agent drained its pending reconfiguration.
    assert manager.round_active is False
    for op in ("A", "B"):
        for executor in deployment.instances(op):
            assert executor.held_keys == set(), f"{name}: held keys"

    if expect_abort:
        aborted = manager.aborted_rounds
        assert aborted, f"{name}: expected a round abort"
        for record in aborted:
            assert record.aborted_at is not None
            assert record.abort_reason
        assert deployment.metrics.rounds_aborted == len(aborted)
        # Recovery: later rounds still reconfigure successfully.
        assert any(
            not r.skipped and not r.aborted for r in manager.completed_rounds
        ), f"{name}: no effective round after the abort"


class RecordingSink(Bolt):
    def __init__(self):
        self.seen = set()

    def process(self, tup, context):
        self.seen.add(tup.values[1])


def test_crash_mid_round_recovers_via_replay():
    """Crash a POI mid-round: the round aborts (or completes without
    it), the supervisor restarts it, acker timeouts replay the lost
    tuples, and the manager keeps reconfiguring afterwards."""

    def source(ctx):
        rng = random.Random(ctx.instance_index)
        for i in range(4000):
            key = rng.randrange(8)
            yield (key, ctx.instance_index * 4000 + i, key + 100)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "sink",
        RecordingSink,
        parallelism=N,
        inputs={"A": TableFieldsGrouping(2)},
    )
    sim = Simulator()
    deployment = deploy(
        sim, Cluster(sim, N), builder.build(), message_timeout_s=0.08
    )
    manager = Manager(
        deployment,
        ManagerConfig(period_s=PERIOD_S, round_timeout_s=TIMEOUT_S),
    )
    # Crash A[1] just after the first periodic round kicks off.
    plan = FaultPlan(crashes=[CrashAt("A", 1, at_s=0.052, down_s=0.01)])
    injector = FaultInjector(plan).attach(deployment, manager)
    manager.start()
    deployment.start()
    sim.run(until=0.5)
    manager.stop()
    sim.run()

    assert injector.injected == 1
    assert deployment.executor("A", 1).crash_count == 1
    # At-least-once: every sequence number reached the sink.
    seen = set()
    for executor in deployment.instances("sink"):
        seen |= executor.operator.seen
    assert seen == set(range(N * 4000))
    # The control plane is at rest and kept working after the crash.
    assert manager.round_active is False
    assert deployment.acker.in_flight == 0
    for executor in deployment.instances("A"):
        assert executor.held_keys == set()
