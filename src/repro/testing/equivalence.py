"""Cross-backend equivalence: the invariant class gating the fast path.

A candidate backend — the vectorized fast path (DESIGN.md §15) or the
multiprocess backend (DESIGN.md §16, real worker processes with
measured CPU/IPC costs) — only earns its place if it is
*indistinguishable* from the discrete-event reference on everything the
paper's evaluation measures. This module turns that into machine-
checked invariants over two :class:`~repro.engine.backends.
BackendResult` objects; the same tiers apply to every candidate, and
:func:`run_equivalence` takes ``candidate=`` to pick which one runs
against the reference. A candidate's ``measured`` field (real costs,
multiprocess only) is carried through untouched — it has no modeled
counterpart to compare against, so it is reported, not gated.

**Exact invariants** (any mismatch is a violation):

- spout-emitted tuple count;
- per-operator processed totals;
- per-key state totals per stateful operator (conservation: every
  tuple counted exactly once, wherever it was routed);
- per-key final placements and per-instance received counts, when the
  topology routes deterministically (``exact_placements`` /
  ``exact_received`` — hybrid/PKG streams make load-dependent picks,
  so there callers relax these two to the containment guarantee the
  backends do share: identical totals, placements within the member
  set).

**Tolerance invariants** (the backends model time differently, so
load-dependent routing may diverge within bounds):

- overall and per-stream locality within ``locality_tol`` (absolute);
- per-operator load balance within ``balance_tol`` (relative).

A third, backend-internal invariant — the reference adapter must not
perturb the DES — is checked by comparing same-seed event fingerprints
against a direct ``deploy``/``run`` (see
:func:`reference_fingerprint_unchanged`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.testing.invariants import Violation


@dataclass
class EquivalenceReport:
    """Outcome of one cross-backend comparison."""

    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _add(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail, at_s=0.0))

    def summary(self) -> str:
        if self.ok:
            return "equivalent"
        return "; ".join(
            f"{v.invariant}: {v.detail}" for v in self.violations
        )


def compare_backends(
    reference,
    candidate,
    *,
    locality_tol: float = 0.02,
    balance_tol: float = 0.15,
    exact_placements: bool = True,
    exact_received: bool = True,
) -> EquivalenceReport:
    """Check ``candidate`` against ``reference`` (both
    :class:`~repro.engine.backends.BackendResult`); returns a report
    whose violations name every broken invariant.

    Set ``exact_placements=False`` / ``exact_received=False`` for
    topologies with load-dependent routing (hybrid split sets, PKG):
    those streams guarantee per-key totals and member-set containment,
    not a reproducible instance sequence.
    """
    report = EquivalenceReport()

    if reference.tuples_emitted != candidate.tuples_emitted:
        report._add(
            "emitted_total",
            f"reference emitted {reference.tuples_emitted}, "
            f"{candidate.backend} emitted {candidate.tuples_emitted}",
        )

    for op in sorted(reference.processed):
        ref_n = reference.processed[op]
        cand_n = candidate.processed.get(op)
        if ref_n != cand_n:
            report._add(
                "processed_total",
                f"{op}: reference processed {ref_n}, "
                f"{candidate.backend} processed {cand_n}",
            )

    for op in sorted(reference.per_key_totals):
        ref_totals = reference.per_key_totals[op]
        cand_totals = candidate.per_key_totals.get(op, {})
        if ref_totals != cand_totals:
            only_ref = set(ref_totals) - set(cand_totals)
            only_cand = set(cand_totals) - set(ref_totals)
            diffs = [
                key
                for key in set(ref_totals) & set(cand_totals)
                if ref_totals[key] != cand_totals[key]
            ]
            report._add(
                "per_key_totals",
                f"{op}: {len(diffs)} keys differ, "
                f"{len(only_ref)} only in reference, "
                f"{len(only_cand)} only in {candidate.backend} "
                f"(sample: {sorted(map(repr, diffs))[:3]})",
            )

    if exact_placements:
        for op in sorted(reference.key_instances):
            ref_where = reference.key_instances[op]
            cand_where = candidate.key_instances.get(op, {})
            if ref_where != cand_where:
                diffs = [
                    key
                    for key in set(ref_where) | set(cand_where)
                    if ref_where.get(key) != cand_where.get(key)
                ]
                report._add(
                    "key_placements",
                    f"{op}: {len(diffs)} keys placed differently "
                    f"(sample: {sorted(map(repr, diffs))[:3]})",
                )

    if exact_received:
        for op in sorted(reference.received):
            if reference.received[op] != candidate.received.get(op):
                report._add(
                    "received_per_instance",
                    f"{op}: reference {reference.received[op]}, "
                    f"{candidate.backend} {candidate.received.get(op)}",
                )

    delta = abs(reference.locality - candidate.locality)
    if delta > locality_tol:
        report._add(
            "locality",
            f"overall locality differs by {delta:.4f} "
            f"(reference {reference.locality:.4f}, "
            f"{candidate.backend} {candidate.locality:.4f}, "
            f"tol {locality_tol})",
        )
    for stream in sorted(reference.stream_locality):
        ref_loc = reference.stream_locality[stream]
        cand_loc = candidate.stream_locality.get(stream)
        if cand_loc is None or abs(ref_loc - cand_loc) > locality_tol:
            report._add(
                "stream_locality",
                f"{stream}: reference {ref_loc:.4f}, "
                f"{candidate.backend} {cand_loc}",
            )

    for op in sorted(reference.load_balance):
        ref_bal = reference.load_balance[op]
        cand_bal = candidate.load_balance.get(op)
        if cand_bal is None or abs(cand_bal - ref_bal) > balance_tol * max(
            ref_bal, 1.0
        ):
            report._add(
                "load_balance",
                f"{op}: reference {ref_bal:.4f}, "
                f"{candidate.backend} {cand_bal} (tol {balance_tol})",
            )

    return report


def run_equivalence(
    topology_factory,
    *,
    reference_options=None,
    candidate_options=None,
    candidate: str = "vectorized",
    locality_tol: float = 0.02,
    balance_tol: float = 0.15,
    exact_placements: bool = True,
    exact_received: bool = True,
):
    """Run the same (finite!) topology on the reference backend and on
    ``candidate``, and compare. ``topology_factory`` is called once per
    backend — each run needs fresh operator state.

    Returns ``(report, reference_result, candidate_result)``.
    """
    from repro.engine.backends import BackendOptions, run_topology

    ref = run_topology(
        topology_factory(),
        "reference",
        reference_options or BackendOptions(),
    )
    cand = run_topology(
        topology_factory(),
        candidate,
        candidate_options or BackendOptions(),
    )
    report = compare_backends(
        ref,
        cand,
        locality_tol=locality_tol,
        balance_tol=balance_tol,
        exact_placements=exact_placements,
        exact_received=exact_received,
    )
    return report, ref, cand


def reference_fingerprint_unchanged(
    topology_factory, options=None
) -> Optional[Violation]:
    """Check the backend seam itself is inert: running a topology
    through the ``reference`` adapter must yield the same event
    fingerprint as a direct ``deploy``/``run`` of the DES — proof the
    refactor added nothing to the simulator hot path.

    Returns None when the fingerprints match, a Violation otherwise.
    """
    from dataclasses import replace

    from repro.engine.backends import BackendOptions, run_topology
    from repro.engine.cluster import Cluster
    from repro.engine.runner import deploy
    from repro.engine.simulator import Simulator
    from repro.engine.backends import _default_servers

    options = options or BackendOptions()
    via_backend = run_topology(
        topology_factory(),
        "reference",
        replace(options, fingerprint=True),
    )

    topology = topology_factory()
    sim = Simulator()
    sim.enable_fingerprint()
    cluster = Cluster(
        sim,
        _default_servers(topology, options),
        bandwidth_gbps=options.bandwidth_gbps,
        latency_s=options.latency_s,
    )
    deployment = deploy(
        sim,
        cluster,
        topology,
        costs=options.costs,
        max_pending=options.max_pending,
    )
    if options.on_deployed is not None:
        options.on_deployed(deployment)
    deployment.start()
    sim.run()

    if via_backend.fingerprint != sim.fingerprint:
        return Violation(
            "reference_fingerprint",
            f"backend adapter fingerprint {via_backend.fingerprint} != "
            f"direct DES fingerprint {sim.fingerprint}",
            at_s=0.0,
        )
    return None
