"""A stable tag/country workload (Section 4.4 substitute for the
Flickr 100M dataset).

"This dataset represents a stable workload as there is no temporal
information and images are not ordered." Tuples are
``(tag, country, padding)``: the application counts tags at the first
stateful PO and countries at the second, so routing goes first by tag,
then by country. Each tag has a fixed home country; correlation
strength is controlled by ``affinity``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.engine import (
    CountBolt,
    Padding,
    TableFieldsGrouping,
    Topology,
    TopologyBuilder,
)
from repro.engine.operators import IteratorSpout
from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, derived_rng


@dataclass(frozen=True)
class FlickrConfig:
    num_tags: int = 4000
    num_countries: int = 120
    tag_exponent: float = 1.0
    country_exponent: float = 0.8
    #: P(photo's country == its tag's home country).
    affinity: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tags < 1 or self.num_countries < 1:
            raise WorkloadError("populations must be >= 1")
        if not 0.0 <= self.affinity <= 1.0:
            raise WorkloadError(
                f"affinity must be in [0, 1], got {self.affinity}"
            )


class FlickrWorkload:
    """Deterministic (tag, country) photo metadata generator."""

    def __init__(self, config: FlickrConfig = FlickrConfig()) -> None:
        self.config = config
        self._tags = ZipfSampler(config.num_tags, config.tag_exponent)
        self._countries = ZipfSampler(
            config.num_countries, config.country_exponent
        )
        #: tag → home country memo: the mapping is a pure function of
        #: (config seed, tag), and deriving the RNG per draw was the
        #: single hottest line of the Fig. 13 pipeline
        self._homes: dict = {}

    def tag_name(self, rank: int) -> str:
        return f"tag{rank}"

    def country_name(self, rank: int) -> str:
        return f"country{rank}"

    def home_country(self, tag: str) -> str:
        """The (stable) country a tag correlates with."""
        country = self._homes.get(tag)
        if country is None:
            rng = derived_rng(self.config.seed, "home", tag)
            country = self.country_name(self._countries.sample(rng))
            self._homes[tag] = country
        return country

    # ------------------------------------------------------------------
    # Data generation
    # ------------------------------------------------------------------

    def pairs(self, count: int, stream_seed: int = 0) -> Iterator[Tuple[str, str]]:
        """``count`` (tag, country) pairs; deterministic per
        ``stream_seed`` (use different seeds for sample vs live)."""
        rng = derived_rng(self.config.seed, "pairs", stream_seed)
        for _ in range(count):
            yield self._draw(rng)

    def _draw(self, rng: random.Random) -> Tuple[str, str]:
        tag = self.tag_name(self._tags.sample(rng))
        if rng.random() < self.config.affinity:
            country = self.home_country(tag)
        else:
            country = self.country_name(self._countries.sample(rng))
        return (tag, country)

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------

    def topology(
        self,
        parallelism: int,
        padding: int = 0,
        tuples_per_instance: int = None,
    ) -> Topology:
        """The Section 4.4 application with swappable routing tables:
        ``S -> A (fields on tag) -> B (fields on country)``."""
        pad = Padding(padding)

        def make_iterator(ctx):
            rng = derived_rng(self.config.seed, "spout", ctx.instance_index)
            emitted = 0
            while (
                tuples_per_instance is None or emitted < tuples_per_instance
            ):
                tag, country = self._draw(rng)
                yield (tag, country, pad)
                emitted += 1

        builder = TopologyBuilder()
        builder.spout(
            "S", lambda: IteratorSpout(make_iterator), parallelism=parallelism
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=True),
            parallelism=parallelism,
            inputs={"S": TableFieldsGrouping(0)},
        )
        builder.bolt(
            "B",
            lambda: CountBolt(1, forward=False),
            parallelism=parallelism,
            inputs={"A": TableFieldsGrouping(1)},
        )
        return builder.build()
