"""The Zipf-plus-flash-crowd workload behind the skew experiment."""

from collections import Counter

import pytest

from repro.engine import Cluster, Simulator, deploy
from repro.errors import WorkloadError
from repro.workloads.skew import (
    HOT_KEY,
    SKEW_POLICIES,
    SkewConfig,
    SkewWorkload,
)


def _config(**overrides):
    defaults = dict(
        parallelism=2, ranks=8, flash_share=0.3, tuples_per_instance=300
    )
    defaults.update(overrides)
    return SkewConfig(**defaults)


def test_config_validation():
    with pytest.raises(WorkloadError):
        SkewConfig(parallelism=0)
    with pytest.raises(WorkloadError):
        SkewConfig(ranks=0)
    with pytest.raises(WorkloadError):
        SkewConfig(flash_share=1.5)
    with pytest.raises(WorkloadError):
        SkewConfig(split_width=1)


def test_tuple_stream_is_deterministic_and_bounded():
    workload = SkewWorkload(_config())
    first = list(workload.tuples_for_instance(0))
    second = list(workload.tuples_for_instance(0))
    assert first == second
    assert len(first) == 300
    assert first != list(workload.tuples_for_instance(1))


def test_tail_keys_have_perfect_home_affinity():
    """Spout instance i only emits tail keys whose home (key % P) is
    i — the construction that makes pure table routing 100% local on
    the tail."""
    config = _config(flash_share=0.0)
    workload = SkewWorkload(config)
    table = workload.home_table()
    for instance in range(config.parallelism):
        for (key,) in workload.tuples_for_instance(instance):
            assert table[key] == instance


def test_home_table_and_split_set_shape():
    config = _config(parallelism=4, split_width=3)
    workload = SkewWorkload(config)
    table = workload.home_table()
    assert table[HOT_KEY] == 0
    assert len(table) == config.ranks * config.parallelism + 1
    assert workload.split_set() == {HOT_KEY: (0, 1, 2)}
    # split_width clamps to the parallelism
    narrow = SkewWorkload(_config(parallelism=2, split_width=8))
    assert narrow.split_set() == {HOT_KEY: (0, 1)}


def test_unknown_policy_rejected():
    with pytest.raises(WorkloadError):
        SkewWorkload(_config()).topology("round-robin")


@pytest.mark.parametrize("policy", SKEW_POLICIES)
def test_each_policy_counts_every_tuple(policy):
    workload = SkewWorkload(_config())
    sim = Simulator()
    cluster = Cluster(sim, 2)
    deployment = deploy(sim, cluster, workload.topology(policy))
    deployment.start()
    sim.run()

    totals = Counter()
    per_instance_hot = {}
    for executor in deployment.instances("A"):
        state = executor.operator.state
        for key, count in state.items():
            totals[key] += count
        per_instance_hot[executor.instance] = state.get(HOT_KEY, 0)

    assert totals == Counter(workload.expected_counts())
    if policy == "table":
        # The flash key pins its single table owner.
        assert per_instance_hot[1] == 0
    elif policy == "hybrid":
        # The flash key spreads over both split members.
        assert per_instance_hot[0] > 0 and per_instance_hot[1] > 0
