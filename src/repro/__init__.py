"""repro — Locality-Aware Routing in Stateful Streaming Applications.

A from-scratch reproduction of Caneill, El Rheddane, Leroy and De Palma
(Middleware 2016): a Storm-like discrete-event streaming engine, the
locality-aware routing optimizer (SpaceSaving statistics, bipartite key
graph, multilevel graph partitioning, online reconfiguration with state
migration), and the workloads and experiment harness to regenerate
every figure of the paper's evaluation.

Subpackages
-----------
- :mod:`repro.engine` — the streaming engine simulation.
- :mod:`repro.core` — the paper's contribution.
- :mod:`repro.spacesaving` — bounded-memory frequency sketch.
- :mod:`repro.partitioning` — multilevel graph partitioner.
- :mod:`repro.workloads` — synthetic, Twitter-like, Flickr-like data.
- :mod:`repro.analysis` — per-figure experiment drivers.

See ``examples/quickstart.py`` for a complete runnable example.
"""

from repro import errors

__version__ = "1.0.0"

__all__ = ["errors", "__version__"]
