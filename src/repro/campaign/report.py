"""The human half of a campaign run: the markdown report.

Rendered from the same data as the JSONL (header + cell results +
baseline diff), written as ``report.md`` next to it. Sections: run
summary, failed cells (violations / timeouts / crashes, with bundle
and log pointers), the full per-cell metric table, and the baseline
comparison (regressions, missing cells, new cells).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.campaign.executor import CellResult

#: cell-table columns always shown before the metric columns
_FIXED_COLUMNS = ("cell", "status", "fingerprint")


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:,.4g}"


def _metric_columns(results: List[CellResult]) -> List[str]:
    seen = {}
    for result in results:
        for key in result.metrics:
            seen.setdefault(key, None)
    return sorted(seen)


def render_markdown(
    header: dict,
    results: List[CellResult],
    diff: Optional[dict] = None,
    tolerance: float = 0.20,
    baseline_path: Optional[str] = None,
) -> str:
    lines: List[str] = []
    name = header.get("campaign", "campaign")
    lines.append(f"# Campaign report: {name}")
    lines.append("")
    if header.get("description"):
        lines.append(header["description"])
        lines.append("")
    statuses: Dict[str, int] = header.get("statuses", {})
    ok = statuses.get("ok", 0)
    lines.append(
        f"- **Run:** {header.get('generated_utc', '?')} · runner "
        f"`{header.get('runner', '?')}` · {header.get('cells', 0)} cells "
        f"· seeds {header.get('seeds', [])}"
    )
    tally = ", ".join(
        f"{count} {status}" for status, count in sorted(statuses.items())
    )
    verdict = "clean" if ok == header.get("cells") else "FAILURES"
    lines.append(f"- **Cells:** {tally or 'none'} — {verdict}")

    failed = [r for r in results if not r.ok]
    if failed:
        lines.append("")
        lines.append("## Failed cells")
        lines.append("")
        for result in failed:
            lines.append(f"- `{result.id}` — **{result.status}**")
            if result.violations:
                for violation in result.violations[:5]:
                    lines.append(
                        f"  - [{violation.get('invariant')}] "
                        f"{violation.get('detail')}"
                    )
            if result.bundle_path:
                lines.append(
                    f"  - repro bundle: `{result.bundle_path}` "
                    f"(replay: `python -m repro.testing.fuzz --replay "
                    f"{result.bundle_path}`)"
                )
            if result.error:
                first = result.error.splitlines()[0]
                lines.append(f"  - {first}")
            if result.log_path:
                lines.append(f"  - log: `{result.log_path}`")

    lines.append("")
    lines.append("## Cells")
    lines.append("")
    metric_columns = _metric_columns(results)
    head = list(_FIXED_COLUMNS) + metric_columns
    lines.append("| " + " | ".join(head) + " |")
    lines.append("|" + "|".join("---" for _ in head) + "|")
    for result in results:
        row = [
            f"`{result.id}`",
            result.status,
            f"`{result.fingerprint}`" if result.fingerprint else "—",
        ]
        for key in metric_columns:
            value = result.metrics.get(key)
            row.append("—" if value is None else _fmt_value(value))
        lines.append("| " + " | ".join(row) + " |")

    lines.append("")
    lines.append("## Baseline comparison")
    lines.append("")
    if diff is None:
        lines.append(
            "No committed baseline — record one with "
            "`python -m repro.campaign run <campaign> --record-baseline`."
        )
    else:
        lines.append(
            f"Baseline `{baseline_path}` · tolerance "
            f"±{tolerance:.0%} on directed metrics "
            f"(`*_per_s` higher-is-better, `*_bytes_per_key` "
            f"lower-is-better, plus the campaign's `axes:` map)."
        )
        lines.append("")
        regressions: Dict[str, List[str]] = diff.get("regressions", {})
        if regressions:
            lines.append("### Regressions")
            lines.append("")
            for cell, messages in sorted(regressions.items()):
                lines.append(f"- `{cell}`")
                for message in messages:
                    lines.append(f"  - {message}")
        else:
            lines.append("No regressions beyond tolerance.")
        if diff.get("missing_cells"):
            lines.append("")
            lines.append(
                "### Baseline cells missing from this run (gate fails)"
            )
            lines.append("")
            for cell in diff["missing_cells"]:
                lines.append(f"- `{cell}`")
        if diff.get("new_cells"):
            lines.append("")
            lines.append("### New cells (not in baseline, informational)")
            lines.append("")
            for cell in diff["new_cells"]:
                lines.append(f"- `{cell}`")
    lines.append("")
    return "\n".join(lines)


def gate_failures(
    results: List[CellResult], diff: Optional[dict]
) -> List[str]:
    """Everything that should fail the campaign gate: one message per
    failed cell, regressed cell, or baseline cell missing from the
    run."""
    messages = [
        f"cell {result.id}: {result.status}"
        for result in results
        if not result.ok
    ]
    if diff:
        for cell, problems in sorted(diff.get("regressions", {}).items()):
            for problem in problems:
                messages.append(f"regression in {cell}: {problem}")
        for cell in diff.get("missing_cells", []):
            messages.append(f"baseline cell missing from run: {cell}")
    return messages
