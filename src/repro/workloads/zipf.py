"""Zipfian sampling.

"Many real datasets follow a Zipfian distribution, with few very
frequent keys, and many rare keys" (Section 3.2). All generators in
this package draw their key popularity from this sampler.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional

from repro.errors import WorkloadError


class WeightedSampler:
    """Samples ranks ``0..n-1`` proportionally to arbitrary weights."""

    def __init__(
        self,
        weights: List[float],
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        if not weights:
            raise WorkloadError("weights must be non-empty")
        if any(w < 0 for w in weights):
            raise WorkloadError("weights must be >= 0")
        self.n = len(weights)
        self._rng = rng if rng is not None else random.Random(seed)
        self._cdf: List[float] = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]
        if self._total <= 0:
            raise WorkloadError("total weight must be > 0")

    def sample(self, rng: Optional[random.Random] = None) -> int:
        r = (rng or self._rng).random() * self._total
        return bisect.bisect_left(self._cdf, r)


def derived_rng(*parts) -> random.Random:
    """A deterministic RNG derived from any hashable description.

    ``random.Random`` only seeds from scalars, so composite seeds
    (config seed, purpose, week, ...) are serialized via repr.
    """
    return random.Random(repr(parts))


class ZipfSampler:
    """Samples ranks ``0..n-1`` with probability ∝ ``1 / (rank+1)^s``.

    Parameters
    ----------
    n:
        Population size.
    exponent:
        Skew ``s``; 0 gives uniform, ~1 matches most social datasets.
    rng:
        Source of randomness; a fresh ``random.Random(seed)`` otherwise.
    """

    def __init__(
        self,
        n: int,
        exponent: float = 1.0,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        if n < 1:
            raise WorkloadError(f"population must be >= 1, got {n}")
        if exponent < 0:
            raise WorkloadError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng if rng is not None else random.Random(seed)
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        self._cdf: List[float] = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self, rng: Optional[random.Random] = None) -> int:
        """Draw one rank (0 = most popular)."""
        r = (rng or self._rng).random() * self._total
        return bisect.bisect_left(self._cdf, r)

    def pmf(self, rank: int) -> float:
        """Probability of ``rank``."""
        if not 0 <= rank < self.n:
            raise WorkloadError(f"rank {rank} outside [0, {self.n})")
        return (1.0 / (rank + 1) ** self.exponent) / self._total

    def __repr__(self) -> str:
        return f"ZipfSampler(n={self.n}, exponent={self.exponent})"
