"""Router cache correctness: memoized routing must be observably
identical to uncached routing.

The caches (DESIGN.md §10) are transparent memoization — same routes,
same counters, same event sequences. These tests pin the transparency
properties the data-plane fast path relies on: cache/uncached
equivalence on randomized key streams, invalidation on table swap,
per-select counter exactness, LRU bounding, and type-disambiguated
memo keys (``1``, ``1.0`` and ``True`` are equal as dict keys but hash
to different destinations).
"""

import random

import pytest

from repro.core.routing_table import RoutingTable
from repro.engine.cluster import Cluster
from repro.engine.grouping import (
    FieldsGrouping,
    PartialKeyGrouping,
    RouterContext,
    TableFieldsGrouping,
    TableRouter,
    _RouteCache,
    clear_stable_hash_memo,
    stable_hash,
)
from repro.engine.runner import deploy
from repro.engine.simulator import Simulator
from repro.workloads.flickr import FlickrConfig, FlickrWorkload


def _context(n_dst: int, cache_size: int) -> RouterContext:
    return RouterContext(
        stream_name="s",
        src_instance=0,
        src_server=0,
        dst_placements=list(range(n_dst)),
        seed=stable_hash("s"),
        cache_size=cache_size,
    )


def _key_stream(count: int, seed: int = 7):
    rng = random.Random(seed)
    keys = []
    for _ in range(count):
        kind = rng.randrange(6)
        if kind == 0:
            keys.append(f"tag{rng.randrange(50)}")
        elif kind == 1:
            keys.append(rng.randrange(100))
        elif kind == 2:
            keys.append(float(rng.randrange(100)))
        elif kind == 3:
            keys.append(rng.random() < 0.5)
        elif kind == 4:
            keys.append(None)
        else:
            # Non-scalar keys take the uncached path.
            keys.append((rng.randrange(10), f"k{rng.randrange(10)}"))
    return keys


@pytest.mark.parametrize(
    "grouping_factory",
    [
        lambda: FieldsGrouping(0),
        lambda: TableFieldsGrouping(
            0, table=RoutingTable({f"tag{i}": i % 5 for i in range(0, 50, 2)})
        ),
        lambda: PartialKeyGrouping(0),
    ],
    ids=["fields", "table-fields", "partial-key"],
)
def test_cached_routing_matches_uncached(grouping_factory):
    """Randomized key stream: the cached router and a cache-disabled
    twin must make identical decisions at every step (partial-key
    routing is stateful, so step-by-step comparison is the real test)."""
    cached = grouping_factory().build_router(_context(5, cache_size=64))
    uncached = grouping_factory().build_router(_context(5, cache_size=0))
    for key in _key_stream(3000):
        assert cached.select((key,)) == uncached.select((key,))


def test_table_router_cache_invalidated_on_update_table():
    grouping = TableFieldsGrouping(0, table=RoutingTable({"a": 1, "b": 2}))
    router = grouping.build_router(_context(5, cache_size=64))
    assert router.select(("a",)) == [1]
    assert router.select(("a",)) == [1]  # served from cache

    router.update_table(RoutingTable({"a": 3}))
    assert router.select(("a",)) == [3]
    # "b" left the table: must fall back to hashing, not the old cache.
    assert router.select(("b",)) == [stable_hash("b", router._seed) % 5]


def test_table_router_counters_exact_with_caching():
    """table_hits / hash_fallbacks count per select, not per cache
    fill — the telemetry layer exports the per-tuple split."""
    table = RoutingTable({"hot": 0})
    cached = TableRouter(lambda v: v[0], 4, 1, table, cache_size=16)
    bare = TableRouter(lambda v: v[0], 4, 1, table, cache_size=0)
    keys = ["hot", "hot", "cold", "hot", "cold", "cold", "hot"]
    for key in keys:
        cached.select((key,))
        bare.select((key,))
    assert cached.table_hits == bare.table_hits == 4
    assert cached.hash_fallbacks == bare.hash_fallbacks == 3


def test_route_cache_is_bounded_lru():
    cache = _RouteCache(3)
    for i in range(3):
        cache.put(i, [i])
    assert len(cache) == 3
    cache.get(0)  # 0 becomes MRU; 1 is now the LRU entry
    cache.put(3, [3])
    assert len(cache) == 3
    assert cache.get(1) is None
    assert cache.get(0) == [0]
    assert cache.get(3) == [3]


def test_equal_keys_of_different_types_do_not_collide():
    """1 == 1.0 == True as dict keys, but their reprs (hence hashes)
    differ: the memo key must include the type."""
    router = FieldsGrouping(0).build_router(_context(1000, cache_size=64))
    routes = {
        kind: router.select((key,))[0]
        for kind, key in (("int", 1), ("float", 1.0), ("bool", True))
    }
    expected = {
        kind: stable_hash(key, router._seed) % 1000
        for kind, key in (("int", 1), ("float", 1.0), ("bool", True))
    }
    assert routes == expected
    # Sanity: with 1000 destinations the three reprs land apart.
    assert len(set(expected.values())) > 1


def test_stable_hash_memo_is_transparent():
    clear_stable_hash_memo()
    keys = ["x", b"x", 42, 42.0, True, None, ("t", 1)]
    cold = [stable_hash(k, seed=9) for k in keys]
    warm = [stable_hash(k, seed=9) for k in keys]
    assert cold == warm
    clear_stable_hash_memo()
    assert [stable_hash(k, seed=9) for k in keys] == cold


def _fig13_fingerprint(cache_size: int) -> tuple:
    from repro.engine.costs import DEFAULT_COSTS

    workload = FlickrWorkload(FlickrConfig(num_tags=200, seed=3))
    topology = workload.topology(parallelism=3, tuples_per_instance=400)
    sim = Simulator()
    sim.enable_fingerprint()
    cluster = Cluster(sim, 3, bandwidth_gbps=1.0)
    deployment = deploy(
        sim,
        cluster,
        topology,
        costs=DEFAULT_COSTS.with_overrides(router_cache_size=cache_size),
    )
    deployment.start()
    sim.run()
    processed = dict(deployment.metrics.processed)
    return sim.fingerprint, sim.events_executed, processed


def test_fingerprint_unchanged_with_caching_enabled():
    """End to end: routing caches must not move a single event — the
    event-sequence fingerprint with caches on equals caches off."""
    with_cache = _fig13_fingerprint(4096)
    without_cache = _fig13_fingerprint(0)
    assert with_cache == without_cache
