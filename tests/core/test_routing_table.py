"""Tests for routing tables and their diffing."""

from repro.core import RoutingTable


def test_empty_table():
    table = RoutingTable.empty()
    assert len(table) == 0
    assert table.lookup("x") is None
    assert "x" not in table


def test_lookup_and_contains():
    table = RoutingTable({"asia": 2, "europe": 0})
    assert table.lookup("asia") == 2
    assert table.lookup("europe") == 0
    assert table.lookup("africa") is None
    assert "asia" in table
    assert len(table) == 2
    assert dict(table.items()) == {"asia": 2, "europe": 0}
    assert set(table.keys()) == {"asia", "europe"}


def test_as_dict_is_a_copy():
    table = RoutingTable({"a": 1})
    snapshot = table.as_dict()
    snapshot["a"] = 9
    assert table.lookup("a") == 1


def test_equality():
    assert RoutingTable({"a": 1}) == RoutingTable({"a": 1})
    assert RoutingTable({"a": 1}) != RoutingTable({"a": 2})
    assert RoutingTable() == RoutingTable.empty()


def test_moved_keys_between_tables():
    old = RoutingTable({"a": 0, "b": 1, "c": 2})
    new = RoutingTable({"a": 0, "b": 2, "d": 1})
    fallback = lambda key: 0  # noqa: E731
    moved = old.moved_keys(new, fallback)
    # "a" stays; "b" moves 1->2; "c" leaves the table (falls back to 0);
    # "d" enters the table (was at fallback 0, now 1).
    assert moved == {"b": (1, 2), "c": (2, 0), "d": (0, 1)}


def test_moved_keys_respects_fallback_identity():
    """A key entering the table at its own hash owner does not move."""
    old = RoutingTable()
    new = RoutingTable({"k": 3})
    moved = old.moved_keys(new, lambda key: 3)
    assert moved == {}


def test_moved_keys_empty_tables():
    assert RoutingTable().moved_keys(RoutingTable(), lambda k: 0) == {}
