"""Experiment drivers and evaluation harnesses.

- :mod:`~repro.analysis.trace_eval` — trace-driven evaluation of
  routing policies (locality / load balance without the engine), used
  by the Fig. 10–12 experiments.
- :mod:`~repro.analysis.experiments` — one driver per paper figure;
  also runnable as ``python -m repro.analysis.experiments <figure>``.
- :mod:`~repro.analysis.telemetry` — loader for the JSONL telemetry
  the observability layer exports (spans, snapshots, metric dumps).
- :mod:`~repro.analysis.report` — plain-text table formatting, plus
  ``python -m repro.analysis.report <telemetry.jsonl>`` to render a
  run summary and per-round timelines from exported telemetry.
"""

from repro.analysis.telemetry import SpanRecord, TelemetryLog
from repro.analysis.trace_eval import (
    EvalResult,
    TwoHopEvaluator,
    weekly_series,
)

__all__ = [
    "TwoHopEvaluator",
    "EvalResult",
    "weekly_series",
    "TelemetryLog",
    "SpanRecord",
]
