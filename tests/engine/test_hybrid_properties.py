"""Property-based tests of skew-resilient routing.

Two families of claims:

- **d-choices beats hash under skew**: for any key, seed and d >= 2,
  the d-choices router's max load is ``ceil(H / k)`` over its ``k``
  distinct candidates — strictly below hash routing's ``H`` whenever
  the candidates don't all collide — and on Zipf-dominated streams its
  max load never exceeds plain fields grouping's.
- **the hybrid migration algebra conserves state**: for arbitrary
  split/unsplit transitions between routing tables,
  :func:`~repro.core.assignment.plan_migrations` moves per-key state
  without loss or duplication, lands every unsplit key on its new
  owner, and never touches a key that stays split.
"""

import random
from collections import Counter
from math import ceil

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.assignment import RoutedStream, plan_migrations
from repro.core.routing_table import RoutingTable
from repro.engine.grouping import (
    FieldsGrouping,
    HybridTableFieldsGrouping,
    PartialKeyGrouping,
    RouterContext,
    candidate_instances,
)
from repro.workloads.zipf import ZipfSampler

keys_st = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.text(min_size=1, max_size=8),
)


def _context(n, seed):
    return RouterContext(
        stream_name="prop",
        src_instance=0,
        src_server=0,
        dst_placements=[0] * n,
        seed=seed,
    )


# ----------------------------------------------------------------------
# d-choices vs hash
# ----------------------------------------------------------------------


@given(
    key=keys_st,
    seed=st.integers(min_value=0, max_value=2**32),
    n=st.integers(min_value=2, max_value=8),
    d=st.integers(min_value=2, max_value=4),
    h=st.integers(min_value=2, max_value=60),
)
@settings(max_examples=120, deadline=None)
def test_dchoices_splits_a_hot_key_to_the_ceiling_bound(key, seed, n, d, h):
    """H tuples of one key: hash routing puts all H on one instance;
    d-choices levels them over the k distinct candidates, so its max
    load is exactly ceil(H / k) — a strict win whenever k >= 2."""
    router = PartialKeyGrouping(0, d=d).build_router(_context(n, seed))
    for _ in range(h):
        router.select((key,))
    k = len(set(candidate_instances(key, seed, n, d)))
    counts = router.sent_counts
    assert sum(counts) == h
    assert max(counts) == ceil(h / k)
    if k >= 2:
        assert max(counts) < h


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=2, max_value=8),
    d=st.integers(min_value=2, max_value=4),
    exponent=st.floats(min_value=1.5, max_value=2.5),
    population=st.integers(min_value=10, max_value=50),
)
@settings(derandomize=True, max_examples=60, deadline=None)
def test_dchoices_not_worse_than_hash_on_zipf_dominated_streams(
    seed, n, d, exponent, population
):
    """On streams whose realized hot key carries at least half the
    traffic (the Zipf regime the hybrid router targets) and whose hot
    candidates don't fully collide, the d-choices max load never
    exceeds plain hash routing's. Derandomized: the example set is a
    pure function of this test, so CI replays the locally verified
    cases."""
    rng = random.Random(seed)
    sampler = ZipfSampler(population, exponent, rng)
    stream = [sampler.sample() for _ in range(400)]
    hot, hot_count = Counter(stream).most_common(1)[0]
    assume(2 * hot_count >= len(stream))
    router_seed = 7
    assume(
        len(set(candidate_instances(hot, router_seed, n, d))) >= 2
    )
    d_router = PartialKeyGrouping(0, d=d).build_router(
        _context(n, router_seed)
    )
    h_router = FieldsGrouping(0).build_router(_context(n, router_seed))
    d_loads: Counter = Counter()
    h_loads: Counter = Counter()
    for key in stream:
        d_loads[d_router.select((key,))[0]] += 1
        h_loads[h_router.select((key,))[0]] += 1
    assert max(d_loads.values()) <= max(h_loads.values())


# ----------------------------------------------------------------------
# Hybrid migration algebra: split/unsplit transitions conserve state
# ----------------------------------------------------------------------

KEY_SPACE = 8


@st.composite
def _transition(draw):
    """(n, old_table, new_table) with arbitrary mappings and split
    sets over a small key space."""
    n = draw(st.integers(min_value=2, max_value=5))

    def table():
        mapping = draw(
            st.dictionaries(
                st.integers(min_value=0, max_value=KEY_SPACE - 1),
                st.integers(min_value=0, max_value=n - 1),
                max_size=KEY_SPACE,
            )
        )
        splits = {}
        for key in draw(
            st.lists(
                st.integers(min_value=0, max_value=KEY_SPACE - 1),
                unique=True,
                max_size=3,
            )
        ):
            members = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    unique=True,
                    min_size=1,
                    max_size=n,
                )
            )
            splits[key] = tuple(members)
        return RoutingTable(mapping, splits)

    return n, table(), table()


def _holders(table, stream, key):
    """Where state for ``key`` lives under ``table``."""
    members = table.split(key)
    if members:
        return list(members)
    owner = table.lookup(key)
    if owner is None:
        owner = stream.fallback_instance(key)
    return [owner]


@given(_transition())
@settings(max_examples=150, deadline=None)
def test_plan_migrations_conserves_and_places_per_key_state(data):
    n, old, new = data
    stream = RoutedStream("S->A", "S", "A", list(range(n)))
    total_of = lambda key: 2 * key + 1  # noqa: E731

    # Distribute each key's state over its old-table holders.
    state = [dict() for _ in range(n)]
    for key in range(KEY_SPACE):
        locs = _holders(old, stream, key)
        total = total_of(key)
        share, rest = divmod(total, len(locs))
        for i, loc in enumerate(locs):
            amount = share + (1 if i < rest else 0)
            if amount:
                state[loc][key] = state[loc].get(key, 0) + amount

    moved_by_plan = set()
    for (src, dst), keys in plan_migrations(old, new, stream).items():
        assert src != dst  # no self-migrations
        for key in keys:
            moved_by_plan.add(key)
            amount = state[src].pop(key, 0)
            state[dst][key] = state[dst].get(key, 0) + amount

    for key in range(KEY_SPACE):
        held = sum(bag.get(key, 0) for bag in state)
        assert held == total_of(key)  # conservation
        if new.split(key):
            # A key split in the new table never migrates: its partial
            # state stays exactly where it was.
            assert key not in moved_by_plan
            continue
        owners = [
            inst for inst, bag in enumerate(state) if bag.get(key, 0)
        ]
        expected = _holders(new, stream, key)
        assert owners == expected, (
            f"key {key}: state on {owners}, new table owns {expected}"
        )


# ----------------------------------------------------------------------
# Hybrid router delivery: one destination per tuple, always valid
# ----------------------------------------------------------------------


@given(
    data=_transition(),
    stream=st.lists(
        st.integers(min_value=0, max_value=KEY_SPACE - 1),
        min_size=1,
        max_size=80,
    ),
)
@settings(max_examples=100, deadline=None)
def test_hybrid_router_delivers_each_tuple_exactly_once(data, stream):
    n, table, _ = data
    router = HybridTableFieldsGrouping(0, table=table).build_router(
        _context(n, seed=3)
    )
    delivered: Counter = Counter()
    for key in stream:
        route = router.select((key,))
        assert len(route) == 1
        assert 0 <= route[0] < n
        members = table.split(key)
        if members:
            assert route[0] in members
        delivered[key] += 1
    assert delivered == Counter(stream)
    assert sum(router.sent_counts) == len(stream)
