"""Figure 8: throughput vs locality (12 kB tuples).

Paper claims asserted:
- hash-based is (mostly) unaffected by data locality;
- locality-aware throughput grows with locality;
- throughput plateaus above ~90% locality (CPU becomes the
  bottleneck before the network).
"""

import pytest

from helpers import save_table, series_of
from repro.analysis.experiments import fig8
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig8(quick=quick)


def test_fig8_regenerate(rows, benchmark):
    benchmark.pedantic(
        lambda: fig8(localities=(0.8,), parallelisms=(2,)),
        rounds=1,
        iterations=1,
    )
    table = format_table(rows, columns=[
        "parallelism", "policy", "locality", "throughput",
    ], title="Figure 8: throughput vs locality (padding 12kB)")
    print()
    print(table)
    save_table("fig08", table)


def test_fig8_hash_flat_locality_aware_grows(rows):
    for parallelism in sorted({r["parallelism"] for r in rows}):
        la = series_of(
            rows,
            {"policy": "locality-aware", "parallelism": parallelism},
            "locality",
            "throughput",
        )
        # locality-aware strictly benefits from more locality.
        assert la[-1][1] > la[0][1] * 1.1
        if parallelism < 3:
            # With only two servers and two keys, any deterministic
            # assignment is quantized; the 1/n co-location guarantee
            # needs n >= 3 (see workloads.synthetic docstring).
            continue
        hash_series = series_of(
            rows,
            {"policy": "hash-based", "parallelism": parallelism},
            "locality",
            "throughput",
        )
        # hash-based varies little with data locality.
        hash_values = [v for _, v in hash_series]
        assert max(hash_values) / min(hash_values) < 1.25


def test_fig8_locality_aware_dominates(rows):
    by_key = {}
    for row in rows:
        key = (row["parallelism"], row["locality"])
        by_key.setdefault(key, {})[row["policy"]] = row["throughput"]
    for key, per_policy in by_key.items():
        assert per_policy["locality-aware"] >= per_policy["hash-based"], key


def test_fig8_growth_is_bounded_by_the_cpu_ceiling(rows, quick):
    """The paper reports a plateau above 90% locality. In our cost
    model the network stops being the binding resource only at 100%
    (see EXPERIMENTS.md), so the reproduced curve grows smoothly up to
    the CPU ceiling instead of flattening early. What must hold: the
    curve is monotone, and full locality lands exactly on the pure-CPU
    bound (n / bolt_service), which is where any plateau would sit."""
    if quick:
        pytest.skip("needs the full locality grid")
    parallelism = max(r["parallelism"] for r in rows)
    la = series_of(
        rows,
        {"policy": "locality-aware", "parallelism": parallelism},
        "locality",
        "throughput",
    )
    values = [v for _, v in la]
    assert values == sorted(values)  # monotone in locality
    cpu_ceiling = parallelism / 9e-6
    assert values[-1] == pytest.approx(cpu_ceiling, rel=0.02)
